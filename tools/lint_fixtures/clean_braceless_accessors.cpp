// Lint fixture (regex-lint blind spot, clean side): must pass every
// rule. Both branches of the braceless omp-for body go through the
// accessor seam — nested braceless control flow with nothing to flag.
void store_color(int* c, int v, int x);  // the accessor seam

void fixture_clean_braceless(int* c, int n) {
#pragma omp parallel for schedule(static)
  for (int v = 0; v < n; ++v)
    if (v % 3 == 0) store_color(c, v, 1);
    else store_color(c, v, 2);
}
