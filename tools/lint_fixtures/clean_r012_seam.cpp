// Lint fixture: the R012-clean counterpart — the helper reached from
// the parallel region routes every color access through the accessor
// seam (store_color), so nothing escapes the audit hooks.
void store_color(int* c, int v, int x);  // the accessor seam

void scatter_via_seam(int* c, int v, int x) {
  store_color(c, v, x);
}

void fixture_clean_r012(int* c, int n) {
#pragma omp parallel for schedule(static, 32)
  for (int v = 0; v < n; ++v) {
    scatter_via_seam(c, v, v % 5);
  }
}
