#!/usr/bin/env bash
# check_all.sh — the full local verification matrix, mirroring
# .github/workflows/ci.yml:
#
#   1. default preset: build everything, run the whole test suite
#   2. lint gate: gcol-sa self-test (engine + fixtures + exit codes) +
#      repo scan over compile_commands inside the wall-time budget
#   3. bench + obs gates: kernel trajectory through bench_gate.py, a
#      traced chaos sweep validated by check_trace.py
#   4. analysis preset: GCOL_AUDIT + -Werror (+ clang-tidy if present),
#      full suite with contracts and audit ledgers live
#   5. modelcheck preset: GCOL_MC build, gcol-mc schedule exploration
#      (exhaustive/DPOR tiny-graph corpus + fixed-seed fuzz budget)
#   6. sanitizer presets: asan / ubsan (full suite), tsan (robust label)
#
# Usage: tools/check_all.sh [--quick]   (--quick = steps 1-4 only)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${JOBS:-$(nproc)}
QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

step() { printf '\n=== %s ===\n' "$*"; }

step "default: configure + build + full test suite"
cmake --preset default
cmake --build --preset default -j"$JOBS"
ctest --preset default -j"$JOBS"

step "lint gate"
python3 tools/gcol_sa --self-test
# Budgeted: the repo gate exits 2 if it stops being fast enough to run
# on every build (cold < 30s; warm cache runs are sub-second). The
# exit contract is tri-state — keep 1 (findings) and 2 (broken gate /
# blown budget) distinguishable instead of letting set -e flatten them.
lint_rc=0
python3 tools/gcol_sa --compile-commands build/compile_commands.json \
  --sarif build/gcol_sa.sarif --budget-seconds 30 --stats \
  --jobs "$JOBS" || lint_rc=$?
case "$lint_rc" in
  0) ;;
  1)
    echo "check_all: gcol-sa reported findings (exit 1) — fix them or" \
         "add a justified entry to tools/gcol_sa_baseline.txt" >&2
    exit 1
    ;;
  *)
    echo "check_all: the gcol-sa gate itself failed (exit $lint_rc):" \
         "either the gate is broken (bad inputs, internal error) or it" \
         "blew the --budget-seconds 30 wall-time budget — the breach" \
         "reason is printed above by gcol-sa" >&2
    exit 2
    ;;
esac
# The committed benign-race surface must match the tree (see
# docs/ANALYSIS.md); exit 2 on drift points at the regen command.
python3 tools/gcol_sa --compile-commands build/compile_commands.json \
  --verify-race-surface --jobs "$JOBS"

# The default suite's perf label just regenerated BENCH_kernels.json;
# gate it at the strict band the CI perf job uses.
step "bench gate"
python3 tools/bench_gate.py BENCH_kernels.json

# The default suite's obs label already ran the traced color_tool runs;
# add the traced chaos sweep + artifact validation the obs CI job does.
step "obs gate: traced chaos sweep + artifact validation"
./build/bench/chaos_sweep --smoke --ranks 4 --datasets afshell_s \
  --json build/obs_chaos_report.json --trace-out build/obs_chaos_trace.json
python3 tools/check_trace.py build/obs_chaos_trace.json \
  --expect-shards --report build/obs_chaos_report.json

step "analysis: GCOL_AUDIT + -Werror, full suite"
cmake --preset analysis
cmake --build --preset analysis -j"$JOBS"
ctest --preset analysis-full -j"$JOBS"

step "modelcheck: GCOL_MC, schedule exploration"
cmake --preset modelcheck
cmake --build --preset modelcheck -j"$JOBS"
ctest --preset modelcheck -j"$JOBS" --timeout 600

if [[ "$QUICK" == "1" ]]; then
  step "quick mode: skipping sanitizers"
  exit 0
fi

for san in asan ubsan; do
  step "$san: full suite"
  cmake --preset "$san"
  cmake --build --preset "$san" -j"$JOBS"
  ctest --preset "$san" -j"$JOBS"
done

step "tsan: robust label"
cmake --preset tsan
cmake --build --preset tsan -j"$JOBS"
ctest --preset tsan -j"$JOBS"

step "all checks passed"
