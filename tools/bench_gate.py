#!/usr/bin/env python3
"""bench_gate: the kernel-benchmark regression gate.

Reads a BENCH_kernels.json produced by micro_forbidden_set --json
(schema gcol-bench-kernels-v2, either bare or wrapped as the "bench"
section of a gcol-report-v1 run report) and enforces, in order:

  G1 valid-rows       every kernel row carries valid=true — an invalid
                      coloring makes its wall-time meaningless.
  G2 probe-geomean    summary.probe_reduction_geomean >= --min-geomean
                      (default 10): the word-parallel forbidden sets
                      must keep their probe-count advantage over the
                      stamped baseline.
  G3 adaptive-wins    per (kind, dataset, algo, threads) group, the
                      adaptive row's wall_ms <= min(stamped, bitmap)
                      * (1 + tolerance): the whole point of the engine
                      is never losing to either fixed policy by more
                      than the noise band.
  G4 no-regression    with --baseline OLD.json: every kernel row's
                      wall_ms <= the matching baseline row (same kind/
                      dataset/algo/fset/threads) * (1 + tolerance).
                      Rows present in the baseline but missing from the
                      candidate fail too (coverage loss); new candidate
                      rows are fine.

The tolerance (--regression-pct, default 10) is a noise band, not a
target: both files should come from the same machine and --smoke level.

Exit codes: 0 all gates pass, 1 a gate failed, 2 unreadable or
unparsable input / usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "gcol-bench-kernels-v2"
REPORT_SCHEMA = "gcol-report-v1"

# A kernel row's identity inside one file (G3 groups drop "fset").
ROW_KEY = ("kind", "dataset", "algo", "fset", "threads")


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"bench_gate: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    if data.get("schema") == REPORT_SCHEMA:
        # gcol-report-v1 wrapper: the kernels payload (rows + summary)
        # lives under the report's "bench" section.
        bench = data.get("bench")
        if not isinstance(bench, dict) or \
                not isinstance(bench.get("kernels"), list):
            print(f"bench_gate: {path}: {REPORT_SCHEMA} document has no "
                  "bench.kernels payload", file=sys.stderr)
            sys.exit(2)
        data = {"schema": SCHEMA, "kernels": bench["kernels"],
                "summary": bench.get("summary", {})}
    if data.get("schema") != SCHEMA:
        print(f"bench_gate: {path}: schema {data.get('schema')!r} != "
              f"{SCHEMA!r}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(data.get("kernels"), list) or not data["kernels"]:
        print(f"bench_gate: {path}: no kernel rows", file=sys.stderr)
        sys.exit(2)
    return data


def row_key(row: dict) -> tuple:
    return tuple(row.get(k) for k in ROW_KEY)


def row_name(row: dict) -> str:
    return (f"{row.get('kind')}/{row.get('dataset')}/{row.get('algo')}"
            f"/{row.get('fset')}@t{row.get('threads')}")


def check_valid(rows: list[dict], failures: list[str]) -> None:
    for row in rows:
        if not row.get("valid"):
            failures.append(f"G1 valid-rows: {row_name(row)} has valid="
                            f"{row.get('valid')!r}")


def check_geomean(data: dict, min_geomean: float,
                  failures: list[str]) -> None:
    got = data.get("summary", {}).get("probe_reduction_geomean")
    if not isinstance(got, (int, float)):
        failures.append("G2 probe-geomean: summary.probe_reduction_geomean "
                        "missing")
    elif got < min_geomean:
        failures.append(f"G2 probe-geomean: {got:.2f}x < required "
                        f"{min_geomean:.2f}x")
    else:
        print(f"  G2 probe-geomean      {got:.2f}x >= {min_geomean:.2f}x")


def check_adaptive(rows: list[dict], tol: float,
                   failures: list[str]) -> None:
    groups: dict[tuple, dict[str, dict]] = {}
    for row in rows:
        key = (row.get("kind"), row.get("dataset"), row.get("algo"),
               row.get("threads"))
        groups.setdefault(key, {})[row.get("fset")] = row
    checked = 0
    for key, by_fset in sorted(groups.items()):
        adaptive = by_fset.get("adaptive")
        fixed = [by_fset[f] for f in ("stamped", "bitmap") if f in by_fset]
        if adaptive is None or not fixed:
            continue  # group not instrumented for the comparison
        best = min(f["wall_ms"] for f in fixed)
        limit = best * (1.0 + tol)
        checked += 1
        if adaptive["wall_ms"] > limit:
            failures.append(
                f"G3 adaptive-wins: {row_name(adaptive)} wall "
                f"{adaptive['wall_ms']:.2f}ms > min(fixed) "
                f"{best:.2f}ms * {1.0 + tol:.2f}")
    print(f"  G3 adaptive-wins      {checked} group(s) compared")
    if checked == 0:
        failures.append("G3 adaptive-wins: no group has both an adaptive "
                        "row and a fixed-policy row")


def check_baseline(rows: list[dict], baseline_rows: list[dict], tol: float,
                   failures: list[str]) -> None:
    current = {row_key(r): r for r in rows}
    compared = 0
    for base in baseline_rows:
        cand = current.get(row_key(base))
        if cand is None:
            failures.append(f"G4 no-regression: {row_name(base)} present in "
                            "baseline but missing from candidate")
            continue
        limit = base["wall_ms"] * (1.0 + tol)
        compared += 1
        if cand["wall_ms"] > limit:
            failures.append(
                f"G4 no-regression: {row_name(cand)} wall "
                f"{cand['wall_ms']:.2f}ms > baseline "
                f"{base['wall_ms']:.2f}ms * {1.0 + tol:.2f}")
    print(f"  G4 no-regression      {compared} row(s) compared")


def main() -> int:
    parser = argparse.ArgumentParser(prog="bench_gate.py",
                                     description=__doc__.splitlines()[0])
    parser.add_argument("candidate", help="BENCH_kernels.json to gate")
    parser.add_argument("--baseline", metavar="JSON",
                        help="prior BENCH_kernels.json to diff against (G4)")
    parser.add_argument("--regression-pct", type=float, default=10.0,
                        help="noise band for G3/G4, percent (default 10)")
    parser.add_argument("--min-geomean", type=float, default=10.0,
                        help="required probe-reduction geomean (default 10)")
    args = parser.parse_args()
    if args.regression_pct < 0 or args.min_geomean < 0:
        parser.error("tolerances must be non-negative")
    tol = args.regression_pct / 100.0

    data = load(args.candidate)
    rows = data["kernels"]
    print(f"bench_gate: {args.candidate}: {len(rows)} kernel row(s)")

    failures: list[str] = []
    check_valid(rows, failures)
    check_geomean(data, args.min_geomean, failures)
    check_adaptive(rows, tol, failures)
    if args.baseline:
        check_baseline(rows, load(args.baseline)["kernels"], tol, failures)

    if failures:
        for f in failures:
            print(f"bench_gate: FAIL {f}")
        print(f"bench_gate: {len(failures)} gate failure(s)", file=sys.stderr)
        return 1
    print("bench_gate: all gates pass")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except KeyboardInterrupt:
        sys.exit(130)
    except Exception as exc:  # noqa: BLE001 — the process boundary
        print(f"bench_gate: internal error: {exc}", file=sys.stderr)
        sys.exit(2)
