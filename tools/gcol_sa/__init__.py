"""gcol-sa: the greedcolor interprocedural static analyzer.

Supersedes the regex-based tools/gcol_lint.py with a real engine:

  lexer.py      a C++ tokenizer (comments, raw strings, char/string
                literals, line continuations, preprocessor directives)
  parser.py     function-definition indexing and a statement-tree
                sketch parser (blocks, if/else, loops, switch, try)
  omp.py        OpenMP region dataflow: parallel / omp-for extents
                through braced, braceless, and nested bodies, plus the
                data-sharing clause model (gcol-sa/race)
  symbols.py    scope/symbol resolver: parameters, local declarations,
                access classification, write-site detection
  effects.py    per-function effect summaries at fixpoint over the call
                graph; R013/R015 program rules; race-surface report
  index.py      per-file analysis over compile_commands.json TUs with
                a content-hash result cache (optionally multiprocess)
  callgraph.py  whole-program call graph + interprocedural reachability
  rules.py      the rule catalog R001-R016 and the program-level rules
  baseline.py   checked-in suppression file with justifications
  sarif.py      SARIF 2.1.0 export
  selftest.py   engine unit tests + fixture matrix + exit-code contract
  cli.py        the command-line front end (exit 0 clean / 1 findings /
                2 broken gate)

The old gcol_lint.py remains as a thin compatibility shim that forwards
to this package with the same flags and exit codes.
"""

# Bump to invalidate every cached per-file analysis result.
ENGINE_VERSION = "gcol-sa-2"

__version__ = "1.1.0"
