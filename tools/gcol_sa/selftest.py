"""gcol-sa self test: engine unit tests, the lint_fixtures matrix, a
golden-verdict identity check against the regex lint's recorded output,
and the subprocess exit-code contract.

Runs with zero dependencies: `python3 tools/gcol_sa --self-test`.
"""

from __future__ import annotations

import glob
import os
import re
import subprocess
import sys
import tempfile

from .index import FileAnalysis, analyze_text, build_program, \
    run_analysis, file_findings
from .lexer import lex
from .parser import find_functions
from .rules import (check_error_propagation, check_interproc_alloc,
                    check_trace_balance)


# ---------------------------------------------------------------------------
# Engine unit tests. Each returns None or raises AssertionError.


def _t_raw_string_hides_pragma():
    src = 'const char* doc = R"(\n#pragma omp critical\n)";\nint x;\n'
    lf = lex(src)
    assert not lf.directives, "raw-string body must not become a directive"
    kinds = [t.kind for t in lf.tokens]
    assert "rawstr" in kinds
    assert not any(t.kind == "id" and t.val == "critical" for t in lf.tokens)


def _t_multiline_pragma_joins():
    src = ("#pragma omp parallel for \\\n"
           "    schedule(static, 64) \\\n"
           "    default(none) shared(c)\n"
           "for (int i = 0; i < 4; ++i) {}\n")
    lf = lex(src)
    assert len(lf.directives) == 1
    d = lf.directives[0]
    assert d.is_omp()
    ids = d.ids()
    assert "schedule" in ids and "shared" in ids
    assert d.attach == 0, "pragma must attach to the first code token"


def _t_line_comment_continuation():
    src = "// comment \\\nstill comment\nint y;\n"
    lf = lex(src)
    assert [t.val for t in lf.tokens] == ["int", "y", ";"]


def _t_digit_separator():
    lf = lex("auto n = 1'000'000;")
    nums = [t for t in lf.tokens if t.kind == "num"]
    assert len(nums) == 1 and nums[0].val == "1'000'000"


def _t_include_paths():
    lf = lex('#include "greedcolor/dist/transport.hpp"\n#include <vector>\n')
    paths = [d.include_path() for d in lf.directives]
    assert paths == ["greedcolor/dist/transport.hpp", "vector"]


def _t_find_functions():
    src = ("int free_fn(int a) { return a; }\n"
           "struct S { int v; };\n"
           "S::S(int v) : v{v} { v += 1; }\n"
           "auto trailing(int x) -> int { return x; }\n"
           "int decl_only(int);\n")
    funcs = find_functions(lex(src).tokens)
    names = [f.name for f in funcs]
    assert names == ["free_fn", "S", "trailing"], names


def _t_lambda_stays_inside():
    src = ("void outer() {\n"
           "  auto f = [](int x) { return x + 1; };\n"
           "  f(2);\n"
           "}\n")
    funcs = find_functions(lex(src).tokens)
    assert [f.name for f in funcs] == ["outer"]


def _t_omp_braceless_nested():
    src = ("void k(int* c, int n) {\n"
           "#pragma omp parallel for schedule(static)\n"
           "  for (int i = 0; i < n; ++i)\n"
           "    if (c[i] > 0) c[i] = 1;\n"
           "    else c[i] = 2;\n"
           "  c[0] = 9;\n"
           "}\n")
    fa = FileAnalysis("mem.cpp", "mem.cpp", src)
    toks = fa.lexed.tokens
    hot_lines = {toks[i].line for i in range(len(toks))
                 if fa.regions.hot[i] and toks[i].val == "c"}
    assert 4 in hot_lines and 5 in hot_lines, \
        "both branches of the braceless if/else are in the omp-for body"
    tail = [i for i in range(len(toks))
            if toks[i].line == 6 and toks[i].val == "c"]
    assert tail and not fa.regions.hot[tail[0]], \
        "code after the loop must not be hot"
    assert not fa.regions.parallel[tail[0]]


def _t_omp_nested_regions():
    src = ("void k(int* c, int n) {\n"
           "#pragma omp parallel\n"
           "  {\n"
           "    int t = 0;\n"
           "#pragma omp for schedule(dynamic)\n"
           "    for (int i = 0; i < n; ++i)\n"
           "      t += c[i];\n"
           "    c[n - 1] = t;\n"
           "  }\n"
           "}\n")
    fa = FileAnalysis("mem.cpp", "mem.cpp", src)
    toks = fa.lexed.tokens
    body = [i for i in range(len(toks))
            if toks[i].line == 7 and toks[i].val == "c"][0]
    after = [i for i in range(len(toks))
             if toks[i].line == 8 and toks[i].val == "c"][0]
    assert fa.regions.parallel[body] and fa.regions.hot[body]
    assert fa.regions.parallel[after] and not fa.regions.hot[after], \
        "after the omp-for, still parallel but no longer the hot body"


def _t_callgraph_reachability():
    src = ("void leaf(int* v) { throw 1; }\n"
           "void mid(int* v) { leaf(v); }\n"
           "void kernel(int* v, int n) {\n"
           "#pragma omp parallel for schedule(static)\n"
           "  for (int i = 0; i < n; ++i) mid(v);\n"
           "}\n")
    payload = analyze_text("mem.cpp", "mem.cpp", src, explicit=True)

    class _AF:
        path, rel = "mem.cpp", "mem.cpp"
        lines = src.split("\n")

        def __init__(self, p):
            self.payload = p
    facts, _ = build_program([_AF(payload)], explicit=True)
    reached = facts.reachable_from_regions(require_parallel=False)
    names = sorted(f.name for (_, f) in reached)
    assert names == ["leaf", "mid"], names
    findings = check_interproc_alloc(facts)
    assert len(findings) == 1 and findings[0].rule == "R009"
    assert "leaf" in findings[0].message


def _t_trace_balanced_loop():
    src = ("void f() {\n"
           "  for (int r = 0; r < 3; ++r) {\n"
           '    GCOL_TRACE_BEGIN(t, "round");\n'
           "    if (r == 2) {\n"
           '      GCOL_TRACE_END(t, "round");\n'
           "      break;\n"
           "    }\n"
           '    GCOL_TRACE_END(t, "round");\n'
           "  }\n"
           "}\n")
    fa = FileAnalysis("mem.cpp", "mem.cpp", src)
    assert check_trace_balance(fa, {"trace_scope"}) == []


def _t_trace_unbalanced_return():
    src = ("int f(int x) {\n"
           '  GCOL_TRACE_BEGIN(t, "phase");\n'
           "  if (x < 0) return -1;\n"
           '  GCOL_TRACE_END(t, "phase");\n'
           "  return 0;\n"
           "}\n")
    fa = FileAnalysis("mem.cpp", "mem.cpp", src)
    found = check_trace_balance(fa, {"trace_scope"})
    assert len(found) == 1 and found[0].rule == "R011"
    assert "return" in found[0].message


def _t_trace_if_else_mismatch():
    src = ("void f(bool b) {\n"
           "  if (b) {\n"
           '    GCOL_TRACE_BEGIN(t, "span");\n'
           "  } else {\n"
           "    (void)b;\n"
           "  }\n"
           '  GCOL_TRACE_END(t, "span");\n'
           "}\n")
    fa = FileAnalysis("mem.cpp", "mem.cpp", src)
    found = check_trace_balance(fa, {"trace_scope"})
    assert found and any("different spans" in f.message for f in found)


def _t_error_facts_classification():
    src = ("void f() { throw Error(ErrorCode::kBadGraph, \"x\"); }\n"
           "const char* to_string(ErrorCode c) {\n"
           "  switch (c) {\n"
           "    case ErrorCode::kBadGraph: return \"bad\";\n"
           "  }\n"
           "  return \"?\";\n"
           "}\n"
           "void g() { raise(ErrorCode::kLost); }\n")
    payload = analyze_text("mem.cpp", "mem.cpp", src, explicit=True)
    ef = payload["errors"]
    constructed = {c for c, _ in ef["constructed"]}
    assert constructed == {"kBadGraph", "kLost"}, constructed
    assert ef["mapped"] == ["kBadGraph"], ef["mapped"]

    class _AF:
        path, rel = "mem.cpp", "mem.cpp"
        lines = src.split("\n")

        def __init__(self, p):
            self.payload = p
    facts, _ = build_program([_AF(payload)], explicit=True)
    findings = check_error_propagation(facts)
    assert len(findings) == 1 and "kLost" in findings[0].message


def _t_clause_parsing():
    src = ("#pragma omp parallel for schedule(static, 64) default(none) \\\n"
           "    shared(g, c) firstprivate(chunk, n) reduction(+ : acc)\n"
           "for (int i = 0; i < 4; ++i) {}\n")
    from .omp import parse_clauses
    cl = parse_clauses(lex(src).directives[0])
    assert cl.default == "none"
    assert cl.shared == {"g", "c"} and cl.firstprivate == {"chunk", "n"}
    assert cl.reduction == {"acc"}, cl.reduction
    assert cl.listed() == {"g", "c", "chunk", "n", "acc"}
    assert cl.has_schedule and not cl.has_num_threads


def _t_symbol_classification():
    src = ("void k(int& total, int* out, const int* vals, int n) {\n"
           "#pragma omp parallel for schedule(static) reduction(+ : red)\n"
           "  for (int i = 0; i < n; ++i) {\n"
           "    int t = vals[i];\n"
           "    t += 1;\n"             # region-local: never a site
           "    out[i] = t;\n"         # iteration-owned subscript
           "    out[0] = t;\n"         # shared write, no justification
           "    total += t;\n"         # shared write, no justification
           "  }\n"
           "}\n")
    from .rules import sharing_model
    fa = FileAnalysis("mem.cpp", "mem.cpp", src)
    sites = {(s["var"], s["line"]): s["just"] for s in sharing_model(fa)}
    assert ("t", 5) not in sites, "region-local write must not be a site"
    assert sites[("out", 6)] == "iteration-owned-index"
    assert sites[("out", 7)] == "", "out[0] write has no justification"
    assert sites[("total", 8)] == "", "ref-param store has no justification"


def _t_effects_fixpoint_cycle():
    # a <-> b call cycle plus one blocking leaf: the fixpoint must
    # converge and both cycle members must inherit blocks-I/O.
    src = ("void a(int v);\n"
           "void b(int v) { if (v > 0) a(v - 1); fopen(\"x\", \"r\"); }\n"
           "void a(int v) { if (v > 0) b(v - 1); }\n")
    from .effects import compute_summaries
    payload = analyze_text("mem.cpp", "mem.cpp", src, explicit=True)

    class _AF:
        path, rel = "mem.cpp", "mem.cpp"
        lines = src.split("\n")

        def __init__(self, p):
            self.payload = p
    facts, _ = build_program([_AF(payload)], explicit=True)
    summ = compute_summaries(facts)
    by_name = {f.name: s for (_, f), s in summ.items()}
    assert by_name["b"].blocks_io, "direct fopen caller"
    assert by_name["a"].blocks_io, "cycle member inherits via b"
    assert not by_name["a"].calls_unknown, "a and b both resolve"


def _t_effects_unknown_widening():
    src = ("void helper(int v) { mystery_external(v); }\n"
           "void pure(int v) { (void)(v * 2); }\n")
    from .effects import compute_summaries
    payload = analyze_text("mem.cpp", "mem.cpp", src, explicit=True)

    class _AF:
        path, rel = "mem.cpp", "mem.cpp"
        lines = src.split("\n")

        def __init__(self, p):
            self.payload = p
    facts, _ = build_program([_AF(payload)], explicit=True)
    summ = compute_summaries(facts)
    by_name = {f.name: s for (_, f), s in summ.items()}
    assert by_name["helper"].calls_unknown, \
        "unresolved free-function call must widen to calls-unknown"
    assert not by_name["pure"].calls_unknown


ENGINE_TESTS = [
    ("lexer: raw string hides pragma", _t_raw_string_hides_pragma),
    ("lexer: multi-line pragma joins", _t_multiline_pragma_joins),
    ("lexer: comment continuation", _t_line_comment_continuation),
    ("lexer: digit separators", _t_digit_separator),
    ("lexer: include paths", _t_include_paths),
    ("parser: function definitions", _t_find_functions),
    ("parser: lambda stays inside", _t_lambda_stays_inside),
    ("omp: braceless nested body", _t_omp_braceless_nested),
    ("omp: nested regions", _t_omp_nested_regions),
    ("omp: data-sharing clauses", _t_clause_parsing),
    ("symbols: access classification", _t_symbol_classification),
    ("effects: cycle fixpoint", _t_effects_fixpoint_cycle),
    ("effects: unknown-callee widening", _t_effects_unknown_widening),
    ("callgraph: region reachability", _t_callgraph_reachability),
    ("r011: balanced loop", _t_trace_balanced_loop),
    ("r011: open at return", _t_trace_unbalanced_return),
    ("r011: if/else mismatch", _t_trace_if_else_mismatch),
    ("errors: construct vs map", _t_error_facts_classification),
]


def run_engine_tests() -> int:
    failures = 0
    for name, fn in ENGINE_TESTS:
        detail = ""
        try:
            fn()
            status = "ok"
        except AssertionError as exc:
            status = "FAIL"
            detail = str(exc)
            failures += 1
        print(f"  {name:<34} engine {status}")
        if detail:
            print(f"    {detail}")
    return failures


# ---------------------------------------------------------------------------
# Fixture matrix + golden identity


def _lint_fixture(root: str, path: str):
    analyzed = run_analysis(root, [path], explicit=True, cache_dir=None)
    findings = file_findings(analyzed)
    facts, _ = build_program(analyzed, explicit=True)
    findings += check_interproc_alloc(facts)
    from .effects import (check_hot_call_effects, check_shared_write_chains,
                          compute_summaries)
    from .rules import check_seam_escape
    findings += check_seam_escape(facts)
    findings += check_error_propagation(facts)
    findings += check_shared_write_chains(facts)
    findings += check_hot_call_effects(facts, compute_summaries(facts))
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def run_fixture_matrix(root: str) -> tuple[int, int]:
    fixtures = sorted(
        glob.glob(os.path.join(root, "tools", "lint_fixtures", "*.cpp")))
    if not fixtures:
        print("gcol-sa --self-test: no fixtures found", file=sys.stderr)
        return 1, 0
    failures = 0
    rendered: dict[str, list[str]] = {}
    for path in fixtures:
        name = os.path.basename(path)
        got = _lint_fixture(root, path)
        rendered[name] = [f.render(root) for f in got]
        m = re.match(r"(r\d{3})_", name)
        if m:
            expected = m.group(1).upper()
            ok = (len(got) == 1 and got[0].rule == expected)
            detail = (f"expected exactly one {expected} finding, got "
                      f"[{', '.join(f.rule for f in got) or 'none'}]")
        else:
            expected = "clean"
            ok = not got
            detail = (f"expected no findings, got "
                      f"[{', '.join(f.rule for f in got)}]")
        status = "ok" if ok else "FAIL"
        print(f"  {name:<34} {expected:<6} {status}")
        if not ok:
            failures += 1
            print(f"    {detail}")
            for line in rendered[name]:
                print(f"    {line}")

    # Golden identity: the regex lint's recorded verdicts for the
    # original corpus must be reproduced byte-for-byte.
    golden_path = os.path.join(os.path.dirname(__file__), "testdata",
                               "fixture_golden.txt")
    with open(golden_path, encoding="utf-8") as fh:
        golden = [line.rstrip("\n") for line in fh if line.strip()]
    produced = set()
    for lines in rendered.values():
        produced.update(lines)
    golden_fail = 0
    for line in golden:
        if line not in produced:
            golden_fail += 1
            print(f"  golden verdict MISSING: {line}")
    status = "ok" if golden_fail == 0 else "FAIL"
    print(f"  {'golden verdict identity (R001-R012)':<34} "
          f"{len(golden) - golden_fail}/{len(golden)} {status}")
    return failures + golden_fail, len(fixtures)


# ---------------------------------------------------------------------------
# Exit-code contract (subprocess, as CI would invoke the gate)


def run_exit_code_checks(root: str) -> int:
    pkg_dir = os.path.dirname(os.path.abspath(__file__))
    checks = []
    dirty = os.path.join(root, "tools", "lint_fixtures",
                         "r001_omp_critical.cpp")
    checks.append(("findings exit 1",
                   [sys.executable, pkg_dir, dirty], 1))
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as fh:
        fh.write("{ this is not json")
        bad_json = fh.name
    try:
        checks.append(("unparsable compile_commands exit 2",
                       [sys.executable, pkg_dir,
                        "--compile-commands", bad_json], 2))
        checks.append(("missing file exit 2",
                       [sys.executable, pkg_dir,
                        os.path.join(root, "no", "such", "file.cpp")], 2))
        failures = 0
        for name, cmd, want in checks:
            rc = subprocess.run(cmd, capture_output=True,
                                check=False).returncode
            ok = rc == want
            print(f"  {name:<34} exit-{want} {'ok' if ok else 'FAIL'}")
            if not ok:
                failures += 1
                print(f"    expected exit {want}, got {rc}")
        return failures
    finally:
        os.unlink(bad_json)


def run_self_test(root: str) -> int:
    eng_fail = run_engine_tests()
    fix_fail, nfix = run_fixture_matrix(root)
    ec_fail = run_exit_code_checks(root)
    neng = len(ENGINE_TESTS)
    print(f"gcol-sa --self-test: {neng - eng_fail}/{neng} engine checks "
          f"ok, {nfix - min(fix_fail, nfix)}/{nfix} fixtures ok, "
          f"{3 - ec_fail}/3 exit-code checks ok")
    return 0 if (eng_fail + fix_fail + ec_fail) == 0 else 1
