"""Whole-program facts: the call graph and interprocedural reachability.

Call resolution is name-based and deliberately over-approximate: a call
site `fs.insert(col)` resolves to *every* repo-defined function named
`insert`. For a gate that is the right bias — a missed edge silently
un-checks an invariant, a spurious edge costs one baseline entry with a
written justification. Only functions defined under src/ (plus files
passed explicitly, which is how fixtures run) participate; test and
bench helpers never pollute kernel reachability.
"""

from __future__ import annotations


class FuncFact:
    __slots__ = ("name", "qual", "line", "calls", "allocs", "color_sites",
                 "params", "writes", "reads_shared")

    def __init__(self, name, qual, line, calls, allocs, color_sites,
                 params=None, writes=None, reads_shared=False):
        self.name = name
        self.qual = qual
        self.line = line
        self.calls = calls            # [{name, line, parallel, hot,
        #                                dotted, decl_like}]
        self.allocs = allocs          # [{line, what}]
        self.color_sites = color_sites  # [line, ...]
        self.params = params or {}    # name -> bool(pointer/ref/array)
        self.writes = writes or []    # shared-write sites through aliasing
        #                               params: [{line, base, idx}]
        self.reads_shared = reads_shared

    def to_dict(self) -> dict:
        return {"name": self.name, "qual": self.qual, "line": self.line,
                "calls": self.calls, "allocs": self.allocs,
                "color_sites": self.color_sites, "params": self.params,
                "writes": self.writes, "reads_shared": self.reads_shared}

    @classmethod
    def from_dict(cls, d: dict) -> "FuncFact":
        return cls(d["name"], d["qual"], d["line"], d["calls"],
                   d["allocs"], d["color_sites"], d.get("params"),
                   d.get("writes"), d.get("reads_shared", False))


class ProgramFacts:
    """Aggregated per-file facts plus the derived call graph."""

    def __init__(self):
        self.files: dict[str, list[FuncFact]] = {}   # rel -> functions
        self.graph_rels: set[str] = set()            # rels in the graph
        self.entry_r009: set[str] = set()            # omp entries, R009
        self.entry_r012: set[str] = set()            # omp entries, R012
        self.error_facts: list[dict] = []
        self.abs_paths: dict[str, str] = {}
        self.source_lines: dict[str, list[str]] = {}
        self._defs: dict[str, list] | None = None

    def add_file(self, rel: str, abs_path: str, lines: list[str],
                 functions: list[FuncFact], errors: dict,
                 in_graph: bool, r009_entry: bool, r012_entry: bool) -> None:
        self.files[rel] = functions
        self.abs_paths[rel] = abs_path
        self.source_lines[rel] = lines
        self.error_facts.append(errors)
        if in_graph:
            self.graph_rels.add(rel)
        if r009_entry:
            self.entry_r009.add(rel)
        if r012_entry:
            self.entry_r012.add(rel)
        self._defs = None

    def defs_by_name(self) -> dict[str, list]:
        if self._defs is None:
            self._defs = {}
            for rel in sorted(self.graph_rels):
                for f in self.files.get(rel, ()):
                    self._defs.setdefault(f.name, []).append((rel, f))
        return self._defs

    def reachable_from_regions(self, require_parallel: bool) -> dict:
        """BFS from every call made inside an OpenMP region body in the
        entry files; returns {(rel, FuncFact): chain} for every function
        reached at call depth >= 1 (direct in-region code stays the
        intraprocedural rules' business)."""
        entries = (self.entry_r012 if require_parallel
                   else self.entry_r009)
        defs = self.defs_by_name()
        reached: dict = {}
        frontier: list = []
        for rel in sorted(entries):
            for f in self.files.get(rel, ()):
                for call in f.calls:
                    inside = (call["parallel"] or call["hot"])
                    if not inside:
                        continue
                    for drel, dfunc in defs.get(call["name"], ()):
                        key = (drel, dfunc)
                        if key in reached:
                            continue
                        chain = (f"via `{call['name']}` called at "
                                 f"{rel}:{call['line']}")
                        reached[key] = chain
                        frontier.append(key)
        while frontier:
            drel, dfunc = frontier.pop()
            chain = reached[(drel, dfunc)]
            for call in dfunc.calls:
                for erel, efunc in defs.get(call["name"], ()):
                    key = (erel, efunc)
                    if key in reached or efunc is dfunc:
                        continue
                    reached[key] = f"{chain} -> `{call['name']}`"
                    frontier.append(key)
        return reached

    # -- reverse dependencies for --changed-only ------------------------

    def dependents_closure(self, changed: set[str],
                           includes: dict[str, list[str]]) -> set[str]:
        """Changed files plus every file that (transitively) includes
        one of them or calls a function they define."""
        import os
        base_of = {rel: os.path.basename(rel) for rel in self.files}
        defs = {}
        for rel, funcs in self.files.items():
            for f in funcs:
                defs.setdefault(f.name, set()).add(rel)
        out = set(changed) & set(self.files)
        grew = True
        while grew:
            grew = False
            dirty_bases = {base_of[r] for r in out}
            for rel, funcs in self.files.items():
                if rel in out:
                    continue
                dep = any(os.path.basename(inc) in dirty_bases
                          for inc in includes.get(rel, ()))
                if not dep:
                    for f in funcs:
                        for call in f.calls:
                            if defs.get(call["name"], set()) & out:
                                dep = True
                                break
                        if dep:
                            break
                if dep:
                    out.add(rel)
                    grew = True
        return out
