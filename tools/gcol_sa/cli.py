"""gcol-sa command line: the lint gate's process boundary.

Exit-code contract (unchanged from gcol_lint.py):
  0  clean (or every finding baselined)
  1  findings
  2  the gate itself could not do its job (bad inputs, internal error,
     blown --budget-seconds)
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from .baseline import BASELINE_NAME, apply as baseline_apply, load as \
    baseline_load, rehash as baseline_rehash, render_entries
from .effects import (build_race_surface, check_hot_call_effects,
                      check_shared_write_chains, compute_summaries,
                      verify_race_surface)
from .index import (GateError, build_program, changed_rels, collect_files,
                    file_findings, find_root, run_analysis)
from .rules import (RULES, RULE_NAMES, check_error_propagation,
                    check_interproc_alloc, check_seam_escape)
from .sarif import write_sarif


def analyze(root: str, paths: list[str], explicit: bool,
            cache_dir: str | None, jobs: int = 1, timings=None):
    """Shared analysis pipeline: per-file rules + program rules.
    Returns (analyzed_files, program_facts, includes_map, findings)."""
    t = timings if timings is not None else {}
    t0 = time.perf_counter()
    analyzed = run_analysis(root, paths, explicit, cache_dir, jobs=jobs)
    t1 = time.perf_counter()
    findings = file_findings(analyzed)
    facts, includes = build_program(analyzed, explicit)
    t2 = time.perf_counter()
    summaries = compute_summaries(facts)
    t3 = time.perf_counter()
    findings += check_interproc_alloc(facts)
    findings += check_seam_escape(facts)
    findings += check_error_propagation(facts)
    findings += check_shared_write_chains(facts)
    findings += check_hot_call_effects(facts, summaries)
    t4 = time.perf_counter()
    t["files"] = t1 - t0
    t["callgraph"] = t2 - t1
    t["effects"] = t3 - t2
    t["program-rules"] = t4 - t3
    return analyzed, facts, includes, findings


def rule_docs() -> str:
    lines = [
        "| Rule | Name | Scope | Fixture | Rationale |",
        "| --- | --- | --- | --- | --- |",
    ]
    for r in RULES:
        lines.append(f"| {r.id} | `{r.name}` | {r.scope} "
                     f"| `{r.fixture}` | {r.rationale} |")
    return "\n".join(lines)


def build_arg_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="gcol_sa",
        description="gcol-sa: token-accurate static analysis gate for the "
                    "greedcolor repo (supersedes tools/gcol_lint.py)")
    p.add_argument("paths", nargs="*",
                   help="analyze only these files (all rules apply)")
    p.add_argument("--compile-commands", metavar="JSON",
                   help="compilation database to take the file set from")
    p.add_argument("--root", default=None,
                   help="repository root (auto-detected by default)")
    p.add_argument("--list-rules", action="store_true")
    p.add_argument("--rule-docs", action="store_true",
                   help="print the rule catalog as a markdown table")
    p.add_argument("--self-test", action="store_true",
                   help="run engine unit tests, the lint_fixtures matrix, "
                        "and the exit-code contract checks")
    p.add_argument("--sarif", metavar="FILE",
                   help="also write findings as SARIF 2.1.0")
    p.add_argument("--baseline", metavar="FILE", default=None,
                   help=f"baseline file (default: tools/{BASELINE_NAME})")
    p.add_argument("--no-baseline", action="store_true",
                   help="report baselined findings too")
    p.add_argument("--write-baseline", action="store_true",
                   help="write the current findings as the new baseline "
                        "and exit 0 (justifications start as TODO)")
    p.add_argument("--changed-only", action="store_true",
                   help="report findings only for files changed per git "
                        "plus their reverse call-graph/include dependents")
    p.add_argument("--diff-base", metavar="REF", default=None,
                   help="with --changed-only: also diff against this ref")
    p.add_argument("--cache-dir", metavar="DIR", default=None,
                   help="content-hash result cache "
                        "(default: <root>/build/gcol_sa_cache)")
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--budget-seconds", type=float, default=None,
                   help="exit 2 if the run exceeds this wall-time budget")
    p.add_argument("--stats", action="store_true",
                   help="print cache/timing statistics (with a per-phase "
                        "breakdown) to stderr")
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="analyze files with N worker processes")
    p.add_argument("--race-surface", metavar="FILE",
                   help="write the gcol-sa-race-v1 shared-write surface "
                        "report to FILE ('-' for stdout)")
    p.add_argument("--verify-race-surface", action="store_true",
                   help="cross-check the freshly built race surface "
                        "against docs/race_surface.json and the seam "
                        "table in docs/ANALYSIS.md (exit 2 on drift)")
    p.add_argument("--rehash-baseline", action="store_true",
                   help="one-shot migration: rewrite the baseline file's "
                        "fingerprints to the current (v2) hash in place")
    return p


def main(argv: list[str] | None = None) -> int:
    t0 = time.monotonic()
    args = build_arg_parser().parse_args(argv)
    root = os.path.abspath(args.root) if args.root else find_root(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

    if args.list_rules:
        for rid in sorted(RULE_NAMES):
            print(f"{rid}  {RULE_NAMES[rid]}")
        return 0
    if args.rule_docs:
        print(rule_docs())
        return 0
    if args.self_test:
        from .selftest import run_self_test
        return run_self_test(root)

    try:
        if args.paths:
            paths = [os.path.realpath(p) for p in args.paths]
            for p in paths:
                if not os.path.exists(p):
                    raise GateError(f"no such file: {p}")
            explicit = True
        else:
            paths = collect_files(root, args.compile_commands)
            if not paths:
                print("gcol-sa: no files to analyze "
                      "(missing compile_commands?)", file=sys.stderr)
                return 2
            explicit = False

        cache_dir = None
        if not args.no_cache:
            cache_dir = args.cache_dir or os.path.join(
                root, "build", "gcol_sa_cache")
        phase_timings: dict[str, float] = {}
        analyzed, facts, includes, findings = analyze(
            root, paths, explicit, cache_dir, jobs=max(1, args.jobs),
            timings=phase_timings)

        if args.rehash_baseline:
            bpath = args.baseline or os.path.join(root, "tools",
                                                  BASELINE_NAME)
            rewritten, unmatched = baseline_rehash(bpath, findings, root)
            for u in unmatched:
                print(f"gcol-sa: warning: could not rehash: {u}",
                      file=sys.stderr)
            print(f"gcol-sa: rehashed {rewritten} baseline entrie(s) in "
                  f"{os.path.relpath(bpath, root)}")
            return 0

        if args.race_surface or args.verify_race_surface:
            import json as _json
            report = build_race_surface(analyzed, facts)
            if args.race_surface == "-":
                _json.dump(report, sys.stdout, indent=1, sort_keys=True)
                print()
            elif args.race_surface:
                with open(args.race_surface, "w", encoding="utf-8") as fh:
                    _json.dump(report, fh, indent=1, sort_keys=True)
                    fh.write("\n")
                print(f"gcol-sa: wrote race surface "
                      f"({report['summary']['sites']} site(s), "
                      f"{report['summary']['flagged']} unjustified) to "
                      f"{args.race_surface}")
            if args.verify_race_surface:
                problems = verify_race_surface(
                    report,
                    os.path.join(root, "docs", "race_surface.json"),
                    os.path.join(root, "docs", "ANALYSIS.md"))
                if problems:
                    for prob in problems:
                        print(f"gcol-sa: race-surface drift: {prob}",
                              file=sys.stderr)
                    print("gcol-sa: regenerate with `python3 tools/gcol_sa "
                          "--race-surface docs/race_surface.json` and "
                          "re-review the justifications", file=sys.stderr)
                    return 2
                print(f"gcol-sa: race surface in sync "
                      f"({report['summary']['sites']} site(s), "
                      f"{report['summary']['flagged']} unjustified)")

        if args.changed_only:
            changed = changed_rels(root, args.diff_base)
            target = facts.dependents_closure(changed, includes)
            findings = [
                f for f in findings
                if os.path.relpath(f.path, root).replace(os.sep, "/")
                in target]

        if args.write_baseline:
            path = args.baseline or os.path.join(root, "tools",
                                                 BASELINE_NAME)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(render_entries(findings, root))
            print(f"gcol-sa: wrote {len(findings)} baseline entrie(s) to "
                  f"{os.path.relpath(path, root)}")
            return 0

        suppressed = []
        if not explicit and not args.no_baseline:
            bpath = args.baseline or os.path.join(root, "tools",
                                                  BASELINE_NAME)
            try:
                entries = baseline_load(bpath)
            except ValueError as exc:
                raise GateError(str(exc)) from exc
            findings, suppressed = baseline_apply(findings, entries, root)
            # A --changed-only run sees only a slice of the findings, so
            # an unmatched entry proves nothing about staleness.
            for e in (entries if not args.changed_only else []):
                if not e.used:
                    print(f"gcol-sa: warning: stale baseline entry "
                          f"{e.rule} {e.rel} {e.fp} "
                          f"(finding no longer produced) — remove it",
                          file=sys.stderr)

        if args.sarif:
            write_sarif(args.sarif, findings, suppressed, root)

        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
            print(f.render(root))

        elapsed = time.monotonic() - t0
        if args.stats:
            hits = sum(1 for a in analyzed if a.cached)
            per_rule: dict[str, int] = {}
            for f in findings + suppressed:
                per_rule[f.rule] = per_rule.get(f.rule, 0) + 1
            counts = " ".join(f"{r}:{n}" for r, n
                              in sorted(per_rule.items())) or "none"
            print(f"gcol-sa: stats: {len(analyzed)} file(s), "
                  f"{hits} cache hit(s), {elapsed:.2f}s, "
                  f"findings {counts}", file=sys.stderr)
            per_phase: dict[str, float] = {}
            for a in analyzed:
                if a.cached:
                    continue
                for k, v in a.payload.get("timings", {}).items():
                    per_phase[k] = per_phase.get(k, 0.0) + v
            per_phase.update(phase_timings)
            breakdown = " ".join(f"{k}:{v * 1000:.0f}ms"
                                 for k, v in per_phase.items())
            print(f"gcol-sa: phases ({max(1, args.jobs)} job(s)): "
                  f"{breakdown}", file=sys.stderr)
        if args.budget_seconds is not None and elapsed > args.budget_seconds:
            print(f"gcol-sa: wall-time budget exceeded: {elapsed:.2f}s > "
                  f"{args.budget_seconds:.2f}s — the gate must stay fast "
                  f"enough to run on every build", file=sys.stderr)
            return 2

        if findings:
            note = (f" ({len(suppressed)} baselined)" if suppressed else "")
            print(f"gcol-sa: {len(findings)} finding(s) in "
                  f"{len(analyzed)} file(s){note}", file=sys.stderr)
            return 1
        note = (f" ({len(suppressed)} baselined finding(s))"
                if suppressed else "")
        print(f"gcol-sa: {len(analyzed)} file(s) clean{note}")
        return 0
    except GateError as exc:
        print(f"gcol-sa: {exc}", file=sys.stderr)
        return 2


def entry() -> None:
    """Process entry point with the exception->exit-2 contract."""
    try:
        sys.exit(main())
    except KeyboardInterrupt:
        sys.exit(130)
    except SystemExit:
        raise
    except Exception as exc:  # noqa: BLE001 — the process boundary
        print(f"gcol-sa: internal error: {exc}", file=sys.stderr)
        sys.exit(2)
