"""SARIF 2.1.0 emission for CI code-scanning upload.

One run, one result per finding; rule metadata comes straight from the
catalog so the SARIF rule help mirrors `--rule-docs`. Paths are emitted
repo-relative against the SRCROOT uriBaseId, which is what
github/codeql-action/upload-sarif expects.
"""

from __future__ import annotations

import json
import os

from . import __version__
from .baseline import fingerprint
from .rules import RULES

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def _rules_meta() -> list[dict]:
    out = []
    for r in RULES:
        out.append({
            "id": r.id,
            "name": r.name,
            "shortDescription": {"text": r.name},
            "fullDescription": {"text": r.rationale},
            "helpUri": "https://example.invalid/gcol-sa/" + r.id.lower(),
            "defaultConfiguration": {"level": "error"},
            "properties": {"scope": r.scope},
        })
    return out


def to_sarif(findings, suppressed, root: str) -> dict:
    results = []
    for f, is_suppressed in ([(f, False) for f in findings]
                             + [(f, True) for f in suppressed]):
        rel = os.path.relpath(f.path, root).replace(os.sep, "/")
        result = {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": rel,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": max(1, f.line)},
                },
            }],
            "partialFingerprints": {
                "gcolSa/v1": fingerprint(f.rule, rel, f.context),
            },
        }
        if is_suppressed:
            result["suppressions"] = [{
                "kind": "external",
                "justification": "baselined in tools/gcol_sa_baseline.txt",
            }]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "gcol-sa",
                "version": __version__,
                "informationUri":
                    "https://example.invalid/gcol-sa",
                "rules": _rules_meta(),
            }},
            "originalUriBaseIds": {
                "SRCROOT": {"uri": "file://" + root.rstrip("/") + "/"},
            },
            "columnKind": "utf16CodeUnits",
            "results": results,
        }],
    }


def write_sarif(path: str, findings, suppressed, root: str) -> None:
    doc = to_sarif(findings, suppressed, root)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
