"""Function-definition indexing and a statement-tree sketch parser.

This is not a C++ parser; it is the smallest amount of structure the
rules need, recovered reliably from the token stream:

  * `find_functions` locates every function *definition* (free
    functions, methods, constructors with init lists, gtest TEST
    bodies) as a [lbrace, rbrace] token range with a best-effort
    qualified name. Lambdas are deliberately not split out — their
    bodies belong to the enclosing function for every rule we run.
  * `parse_stmts` turns a body range into a statement tree (blocks,
    if/else, loops with braceless bodies, switch, try/catch, simple
    statements classified as return/break/continue/throw) with
    preprocessor directives attached to the statement they precede —
    which is exactly what OpenMP pragma extents need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

OPENERS = {"(": ")", "[": "]", "{": "}"}
CLOSERS = {")", "]", "}"}

# An identifier directly before '(' that can never be a function name.
_NOT_A_FUNC = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "decltype", "new", "delete", "throw", "case", "do",
    "else", "co_await", "co_return", "co_yield", "static_assert",
    "alignas", "defined", "requires", "noexcept", "assert",
}

_QUALIFIERS = {"const", "noexcept", "override", "final", "mutable",
               "volatile", "&", "&&", "throw", "constexpr"}


def skip_balanced(tokens, i: int) -> int:
    """Token at `i` opens a bracket; return the index *after* its match
    (or len(tokens) if unbalanced — tolerate truncated input)."""
    stack = [tokens[i].val]
    i += 1
    n = len(tokens)
    while i < n and stack:
        v = tokens[i].val
        if v in OPENERS:
            stack.append(v)
        elif v in CLOSERS:
            # Pop to the innermost matching opener; tolerate mismatches.
            while stack and OPENERS[stack[-1]] != v:
                stack.pop()
            if stack:
                stack.pop()
        i += 1
    return i


@dataclass
class Func:
    name: str          # unqualified name ("store_color", "insert")
    qual: str          # best-effort qualified spelling
    line: int          # line of the body's opening brace
    lparen: int        # token index of the parameter-list '('
    lbrace: int        # token index of '{'
    rbrace: int        # token index one past the matching '}'


def _match_name(tokens, i: int) -> tuple[str, str] | None:
    """Walk back from the token before '(' and recover the function
    name; returns (name, qualified) or None if this is not a named
    function (lambda, control statement, cast...)."""
    if i < 0:
        return None
    t = tokens[i]
    # name<T...>(  — skip the template argument list backwards.
    if t.kind == "punct" and t.val == ">":
        depth = 1
        j = i - 1
        while j >= 0 and depth and i - j < 64:
            v = tokens[j].val
            if v == ">":
                depth += 1
            elif v == "<":
                depth -= 1
            j -= 1
        if depth:
            return None
        i = j
        t = tokens[i] if i >= 0 else None
        if t is None:
            return None
    if t.kind != "id" or t.val in _NOT_A_FUNC:
        return None
    parts = [t.val]
    j = i - 1
    while j >= 1 and tokens[j].val == "::" and tokens[j - 1].kind == "id":
        parts.append("::")
        parts.append(tokens[j - 1].val)
        j -= 2
    if j >= 0 and tokens[j].val == "~":
        parts.append("~")
    return t.val, "".join(reversed(parts))


def _skip_to_body(tokens, i: int) -> int:
    """After the parameter-list ')', skip qualifiers / trailing return /
    constructor init list. Returns the index of the body '{', or -1 if
    this is a declaration, deleted definition, or not a function."""
    n = len(tokens)
    while i < n:
        v = tokens[i].val
        if v == "{":
            return i
        if v in (";", ",", ")", "]"):
            return -1
        if v in _QUALIFIERS:
            if v in ("noexcept", "throw") and i + 1 < n \
                    and tokens[i + 1].val == "(":
                i = skip_balanced(tokens, i + 1)
            else:
                i += 1
            continue
        if v == "->":  # trailing return type: skip tokens until body
            i += 1
            while i < n:
                u = tokens[i].val
                if u == "{":
                    return i
                if u in (";", "=", ")"):
                    return -1
                if u in OPENERS:
                    i = skip_balanced(tokens, i)
                else:
                    i += 1
            return -1
        if v == ":":  # constructor member-init list
            i += 1
            while i < n:
                u = tokens[i].val
                prev = tokens[i - 1].val if i else ""
                if u == "{":
                    # a{...} initializer directly follows a name or
                    # template close; anything else opens the body.
                    if prev and (tokens[i - 1].kind == "id" or prev == ">"):
                        i = skip_balanced(tokens, i)
                        continue
                    return i
                if u in ("(", "["):
                    i = skip_balanced(tokens, i)
                    continue
                if u == ";":
                    return -1
                i += 1
            return -1
        if v == "=":  # = delete / = default / = 0
            return -1
        if v == "[":  # attribute [[...]]
            i = skip_balanced(tokens, i)
            continue
        return -1
    return -1


def find_functions(tokens) -> list[Func]:
    funcs: list[Func] = []
    n = len(tokens)
    i = 0
    while i < n:
        t = tokens[i]
        if t.kind == "punct" and t.val == "(":
            named = _match_name(tokens, i - 1)
            if named is None:
                i += 1
                continue
            close = skip_balanced(tokens, i)  # one past ')'
            body = _skip_to_body(tokens, close)
            if body < 0:
                i += 1
                continue
            end = skip_balanced(tokens, body)
            name, qual = named
            funcs.append(Func(name=name, qual=qual, line=tokens[body].line,
                              lparen=i, lbrace=body, rbrace=end))
        i += 1
    # Keep only outermost ranges (a nested candidate inside a recorded
    # body — a local struct's method, a detected lambda — stays part of
    # its encloser for rule purposes).
    outer: list[Func] = []
    for f in funcs:
        if outer and f.lbrace > outer[-1].lbrace and f.rbrace <= outer[-1].rbrace:
            continue
        outer.append(f)
    return outer


# ---------------------------------------------------------------------------
# Statement tree


@dataclass
class Stmt:
    kind: str          # block | if | loop | switch | try | simple | label
    start: int         # first token index
    end: int           # one past the last token index
    pragmas: list = field(default_factory=list)   # attached Directives
    children: list = field(default_factory=list)  # sub-statements
    # kind-specific:
    #   if:     children = [then, else?]; cond = (lo, hi) token range
    #   loop:   children = [body]; loop_kind in {for, while, do}
    #   simple: simple_kind in {plain, return, break, continue, throw, goto}
    cond: tuple | None = None
    loop_kind: str = ""
    simple_kind: str = ""


def _attach_map(directives) -> dict[int, list]:
    amap: dict[int, list] = {}
    for d in directives:
        amap.setdefault(d.attach, []).append(d)
    return amap


def parse_stmts(tokens, i: int, end: int, amap: dict[int, list]) -> list[Stmt]:
    stmts: list[Stmt] = []
    while i < end:
        st, i = _parse_stmt(tokens, i, end, amap)
        if st is None:
            break
        stmts.append(st)
    return stmts


def _consume_simple(tokens, i: int, end: int) -> int:
    """Advance past one `...;` statement, balancing every bracket (a
    lambda body's semicolons stay inside). Stops at an unmatched '}'."""
    while i < end:
        v = tokens[i].val
        if v == ";":
            return i + 1
        if v in OPENERS:
            i = skip_balanced(tokens, i)
            continue
        if v in CLOSERS:
            return i  # missing ';' before a closing brace — don't eat it
        i += 1
    return i


def _parse_stmt(tokens, i: int, end: int, amap) -> tuple[Stmt | None, int]:
    pragmas = list(amap.get(i, ()))
    if i >= end:
        # Trailing directive attached past the last token of the range.
        return None, i
    t = tokens[i]
    start = i
    v = t.val

    if v == "{":
        close = skip_balanced(tokens, i)
        inner = parse_stmts(tokens, i + 1, min(close - 1, end), amap)
        return Stmt("block", start, close, pragmas, inner), close

    if v == "if":
        j = i + 1
        if j < end and tokens[j].val == "constexpr":
            j += 1
        if j >= end or tokens[j].val != "(":
            k = _consume_simple(tokens, i, end)
            return Stmt("simple", start, k, pragmas, simple_kind="plain"), k
        cond_end = skip_balanced(tokens, j)
        then, k = _parse_stmt(tokens, cond_end, end, amap)
        children = [then] if then else []
        if k < end and tokens[k].val == "else":
            els, k = _parse_stmt(tokens, k + 1, end, amap)
            if els:
                children.append(els)
        return Stmt("if", start, k, pragmas, children,
                    cond=(j, cond_end)), k

    if v in ("for", "while"):
        j = i + 1
        if j < end and tokens[j].val == "(":
            hdr_end = skip_balanced(tokens, j)
        else:
            hdr_end = j
        body, k = _parse_stmt(tokens, hdr_end, end, amap)
        st = Stmt("loop", start, k, pragmas,
                  [body] if body else [], cond=(j, hdr_end))
        st.loop_kind = v
        return st, k

    if v == "do":
        body, k = _parse_stmt(tokens, i + 1, end, amap)
        # while (...) ;
        if k < end and tokens[k].val == "while":
            j = k + 1
            if j < end and tokens[j].val == "(":
                j = skip_balanced(tokens, j)
            if j < end and tokens[j].val == ";":
                j += 1
            k = j
        st = Stmt("loop", start, k, pragmas, [body] if body else [])
        st.loop_kind = "do"
        return st, k

    if v == "switch":
        j = i + 1
        if j < end and tokens[j].val == "(":
            j = skip_balanced(tokens, j)
        body, k = _parse_stmt(tokens, j, end, amap)
        return Stmt("switch", start, k, pragmas,
                    [body] if body else []), k

    if v == "try":
        body, k = _parse_stmt(tokens, i + 1, end, amap)
        children = [body] if body else []
        while k < end and tokens[k].val == "catch":
            j = k + 1
            if j < end and tokens[j].val == "(":
                j = skip_balanced(tokens, j)
            handler, k = _parse_stmt(tokens, j, end, amap)
            if handler:
                children.append(handler)
        return Stmt("try", start, k, pragmas, children), k

    if v in ("case", "default"):
        j = i + 1
        while j < end and tokens[j].val != ":":
            if tokens[j].val in OPENERS:
                j = skip_balanced(tokens, j)
            else:
                j += 1
        return Stmt("label", start, min(j + 1, end), pragmas), min(j + 1, end)

    if v in ("return", "break", "continue", "throw", "goto"):
        j = _consume_simple(tokens, i, end)
        return Stmt("simple", start, j, pragmas, simple_kind=v), j

    if v == ";":
        return Stmt("simple", start, i + 1, pragmas, simple_kind="plain"), i + 1

    if v == "}":  # unmatched close: caller's range ended early
        return None, i

    j = _consume_simple(tokens, i, end)
    if j == i:  # safety: always make progress
        j = i + 1
    return Stmt("simple", start, j, pragmas, simple_kind="plain"), j


def parse_function_body(tokens, func: Func, directives) -> list[Stmt]:
    amap = _attach_map([d for d in directives
                        if func.lbrace < d.attach <= func.rbrace])
    return parse_stmts(tokens, func.lbrace + 1, func.rbrace - 1, amap)
