"""OpenMP region dataflow over the statement tree.

The regex lint tracked parallel regions with a brace counter and a
hand-rolled "braceless for body" state machine — which is exactly what
broke on nested braceless bodies and multi-line pragmas. Here the
statement tree already carries each pragma attached to the statement it
governs, so region extents are a tree walk:

  * `#pragma omp parallel` (without `for`) marks its statement subtree
    as a parallel region;
  * `#pragma omp for` / `#pragma omp parallel for` marks the *body* of
    the following loop as the hot omp-for extent (the loop header —
    init/cond/incr — is driver code, matching the old gate's scoping),
    plus the parallel flag when the pragma spells `parallel`;
  * nesting unions flags; a braceless body is just a subtree with one
    statement, and nested braceless control flow inside it stays
    covered — no first-semicolon cutoff.

The result is two boolean arrays over the file's code-token indices:
`parallel[i]` / `hot[i]`.
"""

from __future__ import annotations


def directive_omp_ids(directive) -> set[str] | None:
    if not directive.is_omp():
        return None
    return set(directive.ids()[2:])


class RegionMap:
    def __init__(self, ntokens: int):
        self.parallel = bytearray(ntokens)
        self.hot = bytearray(ntokens)

    def mark(self, start: int, end: int, parallel: bool, hot: bool) -> None:
        for i in range(start, min(end, len(self.parallel))):
            if parallel:
                self.parallel[i] = 1
            if hot:
                self.hot[i] = 1


def apply_regions(stmts, regions: RegionMap,
                  parallel: bool = False, hot: bool = False) -> None:
    """Walk a statement list, propagating inherited flags and applying
    pragma-introduced ones to the governed subtrees."""
    for st in stmts:
        p, h = parallel, hot
        pragma_par = pragma_for = False
        for d in st.pragmas:
            ids = directive_omp_ids(d)
            if ids is None:
                continue
            if "parallel" in ids:
                pragma_par = True
            if "for" in ids:
                pragma_for = True
        if pragma_for and st.kind == "loop":
            # The loop header stays at the inherited flags; the body is
            # the omp-for extent.
            regions.mark(st.start, st.end, p or pragma_par, h)
            body_p = p or pragma_par
            for body in st.children:
                regions.mark(body.start, body.end, body_p, True)
                apply_regions([body], regions, body_p, True)
            continue
        if pragma_par or pragma_for:
            # `omp parallel` with a structured block — or an omp-for
            # pragma on something that is not a loop (degenerate input):
            # conservatively treat the whole statement as the extent.
            p = True
            h = h or pragma_for
        regions.mark(st.start, st.end, p, h)
        if st.children:
            apply_regions(st.children, regions, p, h)
