"""OpenMP region dataflow over the statement tree.

The regex lint tracked parallel regions with a brace counter and a
hand-rolled "braceless for body" state machine — which is exactly what
broke on nested braceless bodies and multi-line pragmas. Here the
statement tree already carries each pragma attached to the statement it
governs, so region extents are a tree walk:

  * `#pragma omp parallel` (without `for`) marks its statement subtree
    as a parallel region;
  * `#pragma omp for` / `#pragma omp parallel for` marks the *body* of
    the following loop as the hot omp-for extent (the loop header —
    init/cond/incr — is driver code, matching the old gate's scoping),
    plus the parallel flag when the pragma spells `parallel`;
  * nesting unions flags; a braceless body is just a subtree with one
    statement, and nested braceless control flow inside it stays
    covered — no first-semicolon cutoff.

The result is two boolean arrays over the file's code-token indices
(`parallel[i]` / `hot[i]`) plus — new with gcol-sa/race — a *region
model*: every construct becomes a `Region` carrying its parsed
data-sharing clauses (`shared` / `private` / `firstprivate` /
`lastprivate` / `reduction` / `default(none)` / `schedule` /
`num_threads`), its nesting parent, and the induction variables of an
omp-for loop header, with `region_of[i]` mapping each token to its
innermost enclosing construct. `critical[i]` / `atomic[i]` track the
synchronized sub-extents the race rules treat as justified.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Clause spellings that take a plain variable list.
_LIST_CLAUSES = ("shared", "private", "firstprivate", "lastprivate",
                 "copyin", "copyprivate", "linear")


def directive_omp_ids(directive) -> set[str] | None:
    if not directive.is_omp():
        return None
    return set(directive.ids()[2:])


@dataclass
class Clauses:
    """Parsed data-sharing clauses of one OpenMP directive."""
    default: str | None = None        # "none" | "shared" | None
    shared: set = field(default_factory=set)
    private: set = field(default_factory=set)
    firstprivate: set = field(default_factory=set)
    lastprivate: set = field(default_factory=set)
    reduction: set = field(default_factory=set)   # the reduced variables
    has_schedule: bool = False
    has_num_threads: bool = False
    names: set = field(default_factory=set)       # every clause spelling

    def privatized(self) -> set:
        return self.private | self.firstprivate | self.lastprivate

    def listed(self) -> set:
        """Every variable named in any data-sharing clause."""
        return (self.shared | self.privatized() | self.reduction)

    def to_dict(self) -> dict:
        return {"default": self.default,
                "shared": sorted(self.shared),
                "private": sorted(self.private),
                "firstprivate": sorted(self.firstprivate),
                "lastprivate": sorted(self.lastprivate),
                "reduction": sorted(self.reduction),
                "has_schedule": self.has_schedule,
                "has_num_threads": self.has_num_threads,
                "names": sorted(self.names)}

    @classmethod
    def from_dict(cls, d: dict) -> "Clauses":
        return cls(default=d.get("default"),
                   shared=set(d.get("shared", ())),
                   private=set(d.get("private", ())),
                   firstprivate=set(d.get("firstprivate", ())),
                   lastprivate=set(d.get("lastprivate", ())),
                   reduction=set(d.get("reduction", ())),
                   has_schedule=bool(d.get("has_schedule")),
                   has_num_threads=bool(d.get("has_num_threads")),
                   names=set(d.get("names", ())))


def parse_clauses(directive) -> Clauses:
    """Parse the clause list of an `#pragma omp ...` directive into a
    `Clauses` model. Tolerant by construction: an unrecognized clause
    contributes its spelling to `names` and nothing else."""
    cl = Clauses()
    toks = directive.tokens
    n = len(toks)
    i = 2  # past "pragma omp"
    # Skip the directive-name tokens (parallel, for, critical, ...) up
    # to the first clause head; clause heads are ids followed by "(" or
    # known bare clauses. Directive names and clause heads can collide
    # ("for" in "parallel for"), so just walk every id.
    while i < n:
        t = toks[i]
        if t.kind != "id":
            i += 1
            continue
        head = t.val
        cl.names.add(head)
        if i + 1 < n and toks[i + 1].val == "(":
            args, j = _clause_args(toks, i + 1)
            if head == "default":
                ids = [a.val for a in args if a.kind == "id"]
                cl.default = ids[0] if ids else None
            elif head in _LIST_CLAUSES:
                vars_ = _arg_vars(args)
                if head == "shared":
                    cl.shared |= vars_
                elif head == "private":
                    cl.private |= vars_
                elif head == "firstprivate":
                    cl.firstprivate |= vars_
                elif head == "lastprivate":
                    cl.lastprivate |= vars_
            elif head == "reduction":
                cl.reduction |= _reduction_vars(args)
            elif head == "schedule":
                cl.has_schedule = True
            elif head == "num_threads":
                cl.has_num_threads = True
            i = j
            continue
        if head == "schedule":
            cl.has_schedule = True
        elif head == "num_threads":
            cl.has_num_threads = True
        i += 1
    return cl


def _clause_args(toks, lparen: int):
    """Tokens inside the balanced `(...)` starting at `lparen`; returns
    (inner_tokens, index_one_past_close)."""
    depth = 0
    out = []
    i = lparen
    n = len(toks)
    while i < n:
        v = toks[i].val
        if v == "(":
            depth += 1
            if depth == 1:
                i += 1
                continue
        elif v == ")":
            depth -= 1
            if depth == 0:
                return out, i + 1
        out.append(toks[i])
        i += 1
    return out, i


def _arg_vars(args) -> set:
    """Top-level comma-separated variable names of a list clause
    (subscripts/array-section syntax is skipped)."""
    out = set()
    depth = 0
    expect = True
    for t in args:
        if t.val in "([{":
            depth += 1
        elif t.val in ")]}":
            depth -= 1
        elif depth == 0 and t.val == ",":
            expect = True
            continue
        if expect and depth == 0 and t.kind == "id":
            out.add(t.val)
            expect = False
    return out


def _reduction_vars(args) -> set:
    """`reduction(op : list)` — the list after the last top-level ':'
    (the operator can itself be an id like `min`)."""
    depth = 0
    colon = -1
    for k, t in enumerate(args):
        if t.val in "([{<":
            depth += 1
        elif t.val in ")]}>":
            depth -= 1
        elif depth == 0 and t.val == ":":
            colon = k
    if colon < 0:
        return set()
    return _arg_vars(args[colon + 1:])


@dataclass
class Region:
    """One OpenMP construct instance in a file."""
    kind: str                 # "parallel" | "for" | "parallel for"
    line: int                 # pragma line
    start: int                # first token of the governed statement
    end: int                  # one past the last token
    clauses: Clauses
    induction: set = field(default_factory=set)  # omp-for loop variables
    parent: int = -1          # index into RegionMap.regions, -1 = none

    def to_dict(self) -> dict:
        return {"kind": self.kind, "line": self.line,
                "start": self.start, "end": self.end,
                "clauses": self.clauses.to_dict(),
                "induction": sorted(self.induction),
                "parent": self.parent}


class RegionMap:
    def __init__(self, ntokens: int):
        self.parallel = bytearray(ntokens)
        self.hot = bytearray(ntokens)
        self.critical = bytearray(ntokens)
        self.atomic = bytearray(ntokens)
        self.region_of = [-1] * ntokens   # innermost Region index
        self.regions: list[Region] = []

    def mark(self, start: int, end: int, parallel: bool, hot: bool) -> None:
        for i in range(start, min(end, len(self.parallel))):
            if parallel:
                self.parallel[i] = 1
            if hot:
                self.hot[i] = 1

    def mark_sync(self, start: int, end: int, kind: str) -> None:
        arr = self.critical if kind == "critical" else self.atomic
        for i in range(start, min(end, len(arr))):
            arr[i] = 1

    def add_region(self, region: Region) -> int:
        self.regions.append(region)
        rid = len(self.regions) - 1
        for i in range(region.start, min(region.end, len(self.region_of))):
            self.region_of[i] = rid
        return rid

    def enclosing(self, tok: int):
        """Innermost-to-outermost Region chain for a token index."""
        out = []
        rid = self.region_of[tok] if 0 <= tok < len(self.region_of) else -1
        while rid >= 0:
            out.append(self.regions[rid])
            rid = self.regions[rid].parent
        return out


def _loop_induction(tokens, st) -> set:
    """Induction / range variables declared in a loop header: every id
    directly followed by `=` (classic for-init) or `:` (range-for)."""
    if st.cond is None:
        return set()
    lo, hi = st.cond
    out = set()
    for i in range(lo, min(hi, len(tokens))):
        t = tokens[i]
        if t.kind != "id":
            continue
        nxt = tokens[i + 1].val if i + 1 < len(tokens) else ""
        if nxt in ("=", ":"):
            out.add(t.val)
    return out


def apply_regions(stmts, regions: RegionMap,
                  parallel: bool = False, hot: bool = False,
                  parent: int = -1) -> None:
    """Walk a statement list, propagating inherited flags and applying
    pragma-introduced ones to the governed subtrees."""
    for st in stmts:
        p, h = parallel, hot
        pragma_par = pragma_for = False
        sync_kind = None
        clauses = None
        pragma_line = 0
        for d in st.pragmas:
            ids = directive_omp_ids(d)
            if ids is None:
                continue
            if "parallel" in ids:
                pragma_par = True
            if "for" in ids:
                pragma_for = True
            if "critical" in ids:
                sync_kind = "critical"
            if "atomic" in ids:
                sync_kind = "atomic"
            if pragma_par or pragma_for:
                c = parse_clauses(d)
                clauses = c if clauses is None else _merge_clauses(clauses, c)
                pragma_line = d.line
        if sync_kind is not None:
            regions.mark_sync(st.start, st.end, sync_kind)
        if pragma_for and st.kind == "loop":
            # The loop header stays at the inherited flags; the body is
            # the omp-for extent.
            regions.mark(st.start, st.end, p or pragma_par, h)
            kind = "parallel for" if pragma_par else "for"
            rid = regions.add_region(Region(
                kind=kind, line=pragma_line, start=st.start, end=st.end,
                clauses=clauses or Clauses(),
                induction=_loop_induction(_REGION_TOKENS, st),
                parent=parent))
            body_p = p or pragma_par
            for body in st.children:
                regions.mark(body.start, body.end, body_p, True)
                apply_regions([body], regions, body_p, True, parent=rid)
            continue
        if pragma_par or pragma_for:
            # `omp parallel` with a structured block — or an omp-for
            # pragma on something that is not a loop (degenerate input):
            # conservatively treat the whole statement as the extent.
            p = True
            h = h or pragma_for
            rid = regions.add_region(Region(
                kind="parallel", line=pragma_line, start=st.start,
                end=st.end, clauses=clauses or Clauses(), parent=parent))
            regions.mark(st.start, st.end, p, h)
            if st.children:
                apply_regions(st.children, regions, p, h, parent=rid)
            continue
        regions.mark(st.start, st.end, p, h)
        if st.children:
            apply_regions(st.children, regions, p, h, parent=parent)


def _merge_clauses(a: Clauses, b: Clauses) -> Clauses:
    a.shared |= b.shared
    a.private |= b.private
    a.firstprivate |= b.firstprivate
    a.lastprivate |= b.lastprivate
    a.reduction |= b.reduction
    a.names |= b.names
    a.has_schedule = a.has_schedule or b.has_schedule
    a.has_num_threads = a.has_num_threads or b.has_num_threads
    if a.default is None:
        a.default = b.default
    return a


# apply_regions needs the file's token list for loop-header induction
# scanning, but its recursive signature predates the region model; the
# module-level slot keeps the call sites (and the golden verdicts)
# untouched. Set by mark_file() before the walk.
_REGION_TOKENS: list = []


def mark_file(func_trees, tokens, ntokens: int) -> RegionMap:
    """Build the RegionMap for a whole file from its function trees."""
    global _REGION_TOKENS
    _REGION_TOKENS = tokens
    regions = RegionMap(ntokens)
    for _func, tree in func_trees:
        apply_regions(tree, regions)
    _REGION_TOKENS = []
    return regions
