"""Scope and symbol resolution over the token stream.

This is the smallest resolver the data-sharing rules need, not a C++
symbol table: per function it recovers the parameter list (with
pointer/reference-ness), every local declaration position (including
loop headers, range-for declarations, condition declarations, and
structured bindings), and then classifies each identifier *access*
inside an OpenMP construct as one of

  loop-private     an omp-for induction / range variable
  region-local     declared inside the parallel construct (private per
                   thread by the OpenMP rules)
  private-clause   named in private/firstprivate/lastprivate
  reduction        named in a reduction clause
  shared-clause    named in an explicit shared(...) clause
  param            a parameter of the enclosing function (shared by
                   default inside the region; a deref/subscript through
                   a pointer or reference parameter aliases memory the
                   caller shares)
  escaping-shared  a function local declared before the construct —
                   `default(shared)`'s silent capture
  unknown          anything else (file-scope, member, macro residue) —
                   static storage or member state, shared by nature

Access scanning also recovers *writes*: an identifier whose postfix
chain (subscripts, member selects) ends in an assignment or
increment/decrement operator, plus `*p = ...` dereference stores and
`++x` prefix forms. Each write carries the identifiers mentioned in its
subscript expressions, which is what lets R013 bless the disjoint
iteration-owned `out[i] = ...` pattern while still flagging a
stale-index write `state[partner] = v`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .parser import OPENERS, skip_balanced

TYPE_KEYWORDS = {
    "auto", "void", "bool", "char", "short", "int", "long", "float",
    "double", "signed", "unsigned", "wchar_t", "char8_t", "char16_t",
    "char32_t", "size_t", "ssize_t", "int8_t", "int16_t", "int32_t",
    "int64_t", "uint8_t", "uint16_t", "uint32_t", "uint64_t",
    "ptrdiff_t", "intptr_t", "uintptr_t",
}

# Specifiers that may precede the type in a declaration.
_DECL_SPECIFIERS = {"const", "constexpr", "consteval", "constinit",
                    "static", "inline", "mutable", "volatile", "register",
                    "thread_local", "typename", "struct", "class", "enum",
                    "extern", "using"}

_NOT_A_DECL_HEAD = {
    "if", "for", "while", "switch", "return", "break", "continue", "do",
    "else", "case", "default", "goto", "throw", "try", "catch", "new",
    "delete", "sizeof", "co_await", "co_return", "co_yield", "this",
    "operator", "public", "private", "protected", "namespace", "template",
    "static_assert", "asm",
}

# Tokens after which a write-target chain counts as a store.
ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>=", "++", "--"}

# An all-caps identifier is a macro invocation by repo convention.
import re
_MACRO_ID = re.compile(r"[A-Z][A-Z0-9_]*\Z")


@dataclass
class Access:
    name: str          # base identifier of the postfix chain
    tok: int           # token index of the base identifier
    line: int
    write: bool
    chained: bool      # the chain went through [], ., ->, or * deref
    is_call: bool      # the chain ended in a call
    subscript_ids: set = field(default_factory=set)
    cls: str = ""      # filled by classify_accesses


@dataclass
class FuncSymbols:
    """Parameters and local-declaration positions of one function."""
    params: dict = field(default_factory=dict)   # name -> bool(ptr/ref)
    decls: dict = field(default_factory=dict)    # name -> [token index]


# ---------------------------------------------------------------------------
# Parameters


def param_table(tokens, func) -> dict:
    """name -> parameter kind:

      "ref"    reference — any store through it lands in caller memory
      "ptr"    pointer or array decay — deref/subscript stores are shared
      "view"   by-value view type (span) — subscript stores are shared
      "value"  plain by-value — a thread-owned copy per call frame
    """
    close = skip_balanced(tokens, func.lparen)   # one past ')'
    params: dict = {}
    depth = 0
    seg: list = []
    for i in range(func.lparen + 1, close - 1):
        t = tokens[i]
        if t.val in OPENERS:
            depth += 1
        elif t.val in (")", "]", "}"):
            depth -= 1
        if depth == 0 and t.val == ",":
            _add_param(seg, params)
            seg = []
        else:
            seg.append(t)
    _add_param(seg, params)
    return params


# By-value types that still alias caller memory through operator[].
_VIEW_TYPES = {"span", "string_view", "Span"}

# Parameter kinds through which a store can reach shared memory.
ALIASING_KINDS = ("ref", "ptr", "view")


def _add_param(seg, params: dict) -> None:
    if not seg:
        return
    if any(t.val in ("&", "&&") for t in seg):
        kind = "ref"
    elif any(t.val in ("*", "[") for t in seg):
        kind = "ptr"
    elif any(t.kind == "id" and t.val in _VIEW_TYPES for t in seg):
        kind = "view"
    else:
        kind = "value"
    # The parameter name: the last id before '=' (default argument) or
    # the end — skipping ids that are part of template args.
    depth = 0
    name = None
    for t in seg:
        if t.val in ("<", "(", "["):
            depth += 1
        elif t.val in (">", ")", "]"):
            depth -= 1
        elif depth == 0 and t.val == "=":
            break
        elif depth == 0 and t.kind == "id" \
                and t.val not in _DECL_SPECIFIERS \
                and t.val not in TYPE_KEYWORDS:
            name = t.val
    if name is not None:
        params[name] = kind


# ---------------------------------------------------------------------------
# Local declarations


def collect_decls(tokens, lo: int, hi: int) -> dict:
    """name -> [token indices] of local declarations in [lo, hi).

    Statement-boundary driven: after `;` / `{` / `}`, inside `for(`/
    `if(`/`while(`/`switch(` headers, and after top-level `,` in a
    multi-declarator statement, try to parse `specifiers type declarator`.
    Over-approximation is the right bias here: a phantom declaration
    makes an access *more* local, which under-reports shared writes in
    degenerate code but never invents one.
    """
    decls: dict = {}
    n = min(hi, len(tokens))
    i = lo
    at_start = True
    while i < n:
        t = tokens[i]
        v = t.val
        if v in (";", "{", "}"):
            at_start = True
            i += 1
            continue
        if t.kind == "id" and v in ("for", "if", "while", "switch"):
            j = i + 1
            if j < n and tokens[j].val == "constexpr":
                j += 1
            if j < n and tokens[j].val == "(":
                # Parse the header interior for declarations (for-init,
                # range-for, condition declarations).
                hdr_end = skip_balanced(tokens, j)
                _scan_decl_at(tokens, j + 1, min(hdr_end - 1, n), decls,
                              header=True)
                i = j
                at_start = False
                continue
        if at_start:
            i = _scan_decl_at(tokens, i, n, decls)
            at_start = False
            continue
        if v in OPENERS:
            i = skip_balanced(tokens, i)
            # A '{' group ended: the next token starts a statement.
            at_start = tokens[i - 1].val == "}" if i - 1 < n else False
            continue
        i += 1
    return decls


def _scan_decl_at(tokens, i: int, hi: int, decls: dict,
                  header: bool = False) -> int:
    """Try to parse one declaration starting at `i`; record declarator
    names. Returns an index at or after `i` (never loops)."""
    start = i
    # Attributes and specifiers.
    while i < hi:
        t = tokens[i]
        if t.val == "[" and i + 1 < hi and tokens[i + 1].val == "[":
            i = skip_balanced(tokens, i)
            continue
        if t.kind == "id" and t.val in _DECL_SPECIFIERS:
            i += 1
            continue
        break
    if i >= hi or tokens[i].kind != "id" \
            or tokens[i].val in _NOT_A_DECL_HEAD:
        return start + 1 if start == i else i
    # The type head: id (:: id)* (<...>)? — or a builtin keyword run.
    type_end = i
    if tokens[i].val in TYPE_KEYWORDS:
        while type_end < hi and tokens[type_end].kind == "id" \
                and tokens[type_end].val in TYPE_KEYWORDS:
            type_end += 1
    else:
        type_end = i + 1
        while type_end + 1 < hi and tokens[type_end].val == "::" \
                and tokens[type_end + 1].kind == "id":
            type_end += 2
        if type_end < hi and tokens[type_end].val == "<":
            closed = _skip_template_args(tokens, type_end, hi)
            if closed < 0:
                return i + 1        # comparison, not template args
            type_end = closed
    # auto [a, b] structured binding.
    j = type_end
    while j < hi and tokens[j].val in ("*", "&", "&&", "const"):
        j += 1
    if j < hi and tokens[j].val == "[" and tokens[i].val == "auto":
        close = skip_balanced(tokens, j)
        for k in range(j + 1, close - 1):
            if tokens[k].kind == "id":
                decls.setdefault(tokens[k].val, []).append(k)
        return close
    # Declarator list: name (= init | {init} | (init))? (, name ...)*
    found = False
    while j < hi:
        if tokens[j].kind != "id" or tokens[j].val in _NOT_A_DECL_HEAD:
            break
        name_idx = j
        nxt = tokens[j + 1].val if j + 1 < hi else ""
        if nxt in ("=", ";", ",", "{", "(", "[", ":", ")"):
            decls.setdefault(tokens[name_idx].val, []).append(name_idx)
            found = True
            j += 1
            # Skip the initializer up to a top-level ',' or ';'.
            while j < hi:
                v = tokens[j].val
                if v in (";", ")"):
                    return j
                if v == ",":
                    j += 1
                    break
                if v == ":" and header:
                    return j         # range-for: done after the name
                if v in OPENERS:
                    j = skip_balanced(tokens, j)
                else:
                    j += 1
            # After ',', allow `*`/`&` before the next declarator.
            while j < hi and tokens[j].val in ("*", "&", "&&"):
                j += 1
            continue
        break
    if found:
        return j
    return i + 1 if not found else j


def _skip_template_args(tokens, i: int, hi: int) -> int:
    """`tokens[i]` is '<'; return index one past the matching '>', or
    -1 if this cannot be a template argument list."""
    depth = 0
    j = i
    while j < hi and j - i < 128:
        v = tokens[j].val
        if v == "<":
            depth += 1
        elif v == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif v == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif v in (";", "{", "}") or v in ("&&", "||"):
            return -1
        elif v in ("(", "["):
            j = skip_balanced(tokens, j)
            continue
        j += 1
    return -1


def build_func_symbols(tokens, func) -> FuncSymbols:
    syms = FuncSymbols()
    syms.params = param_table(tokens, func)
    syms.decls = collect_decls(tokens, func.lbrace + 1, func.rbrace - 1)
    return syms


# ---------------------------------------------------------------------------
# Access scanning


_CHAIN_STOP = {"(", ")"}

_KEYWORDS_SKIP = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "decltype", "new", "delete", "throw", "case", "do",
    "else", "break", "continue", "goto", "true", "false", "nullptr",
    "const", "constexpr", "static", "auto", "void", "bool", "char",
    "short", "int", "long", "float", "double", "signed", "unsigned",
    "this", "operator", "template", "typename", "using", "namespace",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
    "co_await", "co_return", "co_yield", "try", "default", "public",
    "private", "protected", "struct", "class", "enum", "noexcept",
    "static_assert", "mutable", "volatile", "inline", "requires",
}


def scan_accesses(tokens, lo: int, hi: int):
    """Yield an Access for every base identifier in [lo, hi)."""
    n = min(hi, len(tokens))
    i = lo
    while i < n:
        t = tokens[i]
        if t.kind != "id" or t.val in _KEYWORDS_SKIP \
                or _MACRO_ID.fullmatch(t.val):
            i += 1
            continue
        prev = tokens[i - 1].val if i > 0 else ""
        if prev in (".", "->", "::"):
            i += 1
            continue            # member / qualified part, base seen earlier
        nxt = tokens[i + 1].val if i + 1 < n else ""
        if nxt == "::":
            i += 1
            continue            # namespace / class qualifier
        # Walk the postfix chain.
        j = i + 1
        chained = False
        is_call = False
        subscript_ids: set = set()
        while j < n:
            v = tokens[j].val
            if v == "[":
                close = skip_balanced(tokens, j)
                for k in range(j + 1, close - 1):
                    if tokens[k].kind == "id":
                        subscript_ids.add(tokens[k].val)
                chained = True
                j = close
                continue
            if v in (".", "->") and j + 1 < n and tokens[j + 1].kind == "id":
                chained = True
                j += 2
                continue
            if v == "(":
                is_call = True
            break
        after = tokens[j].val if j < n else ""
        write = after in ASSIGN_OPS and not is_call
        if not write and prev in ("++", "--"):
            write = True
        deref = False
        if not write and prev == "*" and not chained and not is_call \
                and nxt in ASSIGN_OPS:
            write = deref = True
        yield Access(name=t.val, tok=i, line=t.line, write=write,
                     chained=chained or deref, is_call=is_call,
                     subscript_ids=subscript_ids)
        i += 1


def classify_access(acc: Access, syms: FuncSymbols, regions,
                    region_chain=None) -> str:
    """Assign the data-sharing classification for an access inside an
    OpenMP construct (see module docstring for the lattice)."""
    chain = (region_chain if region_chain is not None
             else regions.enclosing(acc.tok))
    if not chain:
        return "outside"
    induction: set = set()
    for r in chain:
        induction |= r.induction
    if acc.name in induction:
        return "loop-private"
    for r in chain:
        if acc.name in r.clauses.reduction:
            return "reduction"
        if acc.name in r.clauses.privatized():
            return "private-clause"
    outermost = chain[-1]
    positions = syms.decls.get(acc.name, ())
    for p in positions:
        if outermost.start <= p <= acc.tok:
            return "region-local"
    for r in chain:
        if acc.name in r.clauses.shared:
            return "shared-clause"
    if acc.name in syms.params:
        return "param"
    for p in positions:
        if p <= acc.tok:
            return "escaping-shared"
    return "unknown"
