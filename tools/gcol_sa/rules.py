"""The gcol-sa rule catalog: R001-R008 ported from the regex lint with
identical verdicts, plus the interprocedural rules R009-R012 the regex
scanner fundamentally cannot express.

File-scope rules run over one file's token stream / statement tree;
program rules run over the whole-program call graph built from every
translation unit's facts. Messages for R001-R008 are byte-identical to
tools/gcol_lint.py so the fixture verdicts do not change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .parser import skip_balanced
from .symbols import (_MACRO_ID, build_func_symbols, classify_access,
                      scan_accesses)

# ---------------------------------------------------------------------------
# Catalog


@dataclass(frozen=True)
class RuleInfo:
    id: str
    name: str
    scope: str
    rationale: str
    fixture: str


RULES: list[RuleInfo] = [
    RuleInfo("R001", "omp-critical", "every file",
             "a critical section in a kernel serializes the very phase the "
             "paper parallelizes; counters merge through `CounterSlots`",
             "r001_omp_critical.cpp"),
    RuleInfo("R002", "raw-color-access", "src/core",
             "in a parallel region the shared color array is touched only "
             "through `load_color`/`store_color`/`exchange_uncolor` "
             "(relaxed `atomic_ref`); a raw access is an unsanctioned race",
             "r002_raw_color_access.cpp"),
    RuleInfo("R003", "kernel-alloc", "src/core",
             "no allocation / `.resize` / `.reserve` / `.at()` inside an "
             "`omp for` body; heap locks serialize threads and workspaces "
             "are pre-sized by the drivers",
             "r003_kernel_alloc.cpp"),
    RuleInfo("R004", "schedule-missing", "src/core",
             "every `omp for` carries an explicit `schedule(...)`: the "
             "chunk size is part of the algorithm (the paper's `-64` "
             "variants), not an implementation default",
             "r004_schedule_missing.cpp"),
    RuleInfo("R005", "raw-atomic-ref", "src/core",
             "`std::atomic_ref` only inside the `kernels_common.hpp` "
             "accessor seam, where the audit ledgers and gcol-mc schedule "
             "points hook every access",
             "r005_raw_atomic_ref.cpp"),
    RuleInfo("R006", "transport-outside-dist", "src/ outside src/dist",
             "the boundary-exchange `Transport` layer is private to "
             "src/dist; everything else selects a transport through "
             "`DistOptions::transport` (`TransportKind`)",
             "r006_transport_outside_dist.cpp"),
    RuleInfo("R007", "marker-set-direct", "src/core bgpc/d2gc drivers",
             "kernel drivers bind references to policy-provided scratch; "
             "a by-value MarkerSet pins one representation and bypasses "
             "the adaptive engine's per-phase choice",
             "r007_marker_set_direct.cpp"),
    RuleInfo("R008", "raw-timing", "src/core + src/dist",
             "engine timing goes through `WallTimer` or gcol-trace spans; "
             "an ad-hoc clock is invisible to the trace timeline and the "
             "run report",
             "r008_raw_chrono.cpp"),
    RuleInfo("R009", "interproc-alloc", "interprocedural, src/",
             "a function *reachable* from an OpenMP region body that "
             "allocates, throws, or calls `.at()` serializes threads on "
             "the heap lock just as surely as a direct call — the regex "
             "lint could only see the direct ones",
             "r009_interproc_alloc.cpp"),
    RuleInfo("R010", "swallowed-error", "whole program",
             "every `gcol::Error` code constructed in src/ must be "
             "reachable from the `to_string` / `is_input_error` / "
             "color_tool exit-code mapping — an unmapped code is an error "
             "kind the 4xx-vs-5xx boundary silently swallows",
             "r010_swallowed_error.cpp"),
    RuleInfo("R011", "trace-unbalanced", "src/",
             "`GCOL_TRACE_BEGIN`/`END` must pair on every control-flow "
             "path; the exporter's runtime orphan handling (PR 8) is a "
             "diagnostic, not a license to leak spans",
             "r011_trace_unbalanced.cpp"),
    RuleInfo("R012", "seam-escape", "interprocedural, src/core",
             "raw reads/writes of the shared color array in any function "
             "reachable from a parallel region — outside the "
             "`kernels_common.hpp` accessor seam — bypass the audit "
             "ledgers and gcol-mc schedule points invisibly",
             "r012_seam_escape.cpp"),
    RuleInfo("R013", "unblessed-shared-write", "interprocedural, src/",
             "every shared-state write inside (or reachable from) a "
             "parallel region must flow through a blessed seam "
             "(kernels_common accessors, CounterSlots, TraceBuffer), a "
             "`reduction` clause, an omp critical/atomic section, or an "
             "iteration-owned index — anything else is the unsanctioned "
             "race the benign-race argument does not cover",
             "r013_shared_write.cpp"),
    RuleInfo("R014", "implicit-data-sharing", "src/core + src/dist",
             "`omp parallel` constructs in the engine layers carry "
             "`default(none)` or name every escaping variable in an "
             "explicit clause; implicit `default(shared)` capture is how "
             "a stack variable silently becomes a race",
             "r014_default_sharing.cpp"),
    RuleInfo("R015", "hot-call-effects", "interprocedural, src/",
             "a call from an omp-for body resolves against the callee's "
             "*effect summary* — blocking I/O or an unknown-effect callee "
             "stalls or invalidates the whole team, not just the calling "
             "thread (deepens R003/R009 from alloc-only to the effect "
             "lattice)",
             "r015_hot_blocking_call.cpp"),
    RuleInfo("R016", "ref-capture-escape", "src/",
             "a lambda inside a parallel region that captures enclosing "
             "locals by reference aliases shared state invisibly to the "
             "data-sharing clauses; capture by value or route the write "
             "through a seam",
             "r016_ref_capture.cpp"),
]

RULE_NAMES = {r.id: r.name for r in RULES}
RULE_BY_ID = {r.id: r for r in RULES}


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str
    context: str = ""   # stripped source line, for drift-stable baselining

    def render(self, root: str) -> str:
        import os
        rel = os.path.relpath(self.path, root)
        return (f"{rel}:{self.line}: error: "
                f"[{self.rule}/{RULE_NAMES[self.rule]}] {self.message}")


# Messages for the ported rules, byte-identical to gcol_lint.py.
MSG = {
    "R001": "`#pragma omp critical` outside util/counters.hpp; "
            "use CounterSlots / per-thread state instead",
    "R002": "raw color-array access inside a parallel region; use "
            "load_color/store_color (relaxed atomic_ref)",
    "R003": "allocation / bounds-checked access inside a hot kernel loop; "
            "pre-size workspaces in the driver",
    "R004": "omp for without an explicit schedule(...) clause",
    "R005": "raw std::atomic_ref outside the kernels_common.hpp accessor "
            "seam; go through load_color/store_color/exchange_uncolor so "
            "audit and gcol-mc hooks see the access",
    "R006_type": "Transport type used outside src/dist; the "
                 "boundary-exchange layer is private — select a transport "
                 "with DistOptions::transport (TransportKind)",
    "R006_include": "greedcolor/dist/transport.hpp is private to src/dist; "
                    "drive the runtime through DistOptions (TransportKind) "
                    "instead",
    "R007": "MarkerSet family instantiated directly in a kernel driver; "
            "bind a reference to the ThreadWorkspace scratch through the "
            "ForbiddenSet policy seam (kernels_common.hpp) so the "
            "per-phase representation choice stays with the engine",
    "R008": "raw std::chrono / omp_get_wtime in an engine layer; time "
            "through WallTimer (result totals) or gcol-trace spans "
            "(src/obs) so the measurement reaches the trace timeline and "
            "the run report",
}

TRANSPORT_NAMES = {"Transport", "MailboxTransport", "LoopbackTransport",
                   "LossyTransport"}
MARKER_NAMES = {"MarkerSet", "BitMarkerSet", "TwoLevelBitMarkerSet"}
CONTAINER_NAMES = {"vector", "string", "map", "unordered_map", "set",
                   "unordered_set"}
# The narrow allocation set R003 has always enforced (direct sites).
R003_METHODS = {"resize", "reserve", "at"}
# The broad set R009 uses for *reachable* functions.
R009_METHODS = {"resize", "reserve", "at", "push_back", "emplace_back",
                "emplace", "assign", "insert_or_assign"}
ALLOC_FREE_FUNCS = {"malloc", "calloc", "realloc", "make_unique",
                    "make_shared"}

ATOMIC_SEAM_SUFFIX = "core/src/kernels_common.hpp"
COUNTERS_SUFFIX = "util/include/greedcolor/util/counters.hpp"
TRACE_MACROS = ("GCOL_TRACE_BEGIN", "GCOL_TRACE_END")

# The blessed benign-race seams: the only places a shared-state write in
# (or reachable from) a parallel region may live without further
# justification. This list IS the race-surface report's seam inventory;
# the race_surface ctest cross-checks it against docs/ANALYSIS.md.
SEAM_FILES = (
    ("color-accessor", "src/core/src/kernels_common.hpp"),
    ("counter-slots", "src/util/include/greedcolor/util/counters.hpp"),
    ("trace-buffer", "src/obs/include/greedcolor/obs/trace.hpp"),
    ("trace-buffer", "src/obs/src/trace.cpp"),
)


def seam_of(rel: str) -> str | None:
    rel = rel.replace("\\", "/")
    for name, suffix in SEAM_FILES:
        if rel.endswith(suffix):
            return name
    return None

KEYWORDS_NOT_CALLS = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "decltype", "new", "delete", "throw", "case", "do",
    "else", "co_await", "co_return", "co_yield", "static_assert",
    "alignas", "noexcept", "requires", "defined", "alignof", "typeid",
}


# ---------------------------------------------------------------------------
# File-scope rules (R001-R008). `fa` is an index.FileAnalysis.


def check_pragma_rules(fa, roles) -> list[Finding]:
    out = []
    allow_critical = fa.rel.replace("\\", "/").endswith(COUNTERS_SUFFIX)
    for d in fa.lexed.directives:
        if not d.is_omp():
            continue
        ids = set(d.ids()[2:])
        if "critical" in ids and not allow_critical:
            out.append(fa.finding("R001", d.line, MSG["R001"]))
        if "core" in roles and "for" in ids and "schedule" not in ids:
            out.append(fa.finding("R004", d.line, MSG["R004"]))
    return out


def check_region_rules(fa, roles) -> list[Finding]:
    """R002 (raw color access in parallel regions) and R003 (narrow
    allocation set in omp-for bodies) — token-accurate, one per line to
    match the line-oriented verdicts of the old gate."""
    if "core" not in roles:
        return []
    out = []
    toks = fa.lexed.tokens
    r002_lines, r003_lines = set(), set()
    for i, t in enumerate(toks):
        if fa.regions.parallel[i] and t.kind == "id" \
                and t.val in ("c", "colors") \
                and i + 1 < len(toks) and toks[i + 1].val == "[" \
                and t.line not in fa.atomic_ref_lines \
                and t.line not in r002_lines:
            r002_lines.add(t.line)
            out.append(fa.finding("R002", t.line, MSG["R002"]))
        if fa.regions.hot[i] and t.line not in r003_lines \
                and _is_r003_site(toks, i):
            r003_lines.add(t.line)
            out.append(fa.finding("R003", t.line, MSG["R003"]))
    return out


def _is_r003_site(toks, i) -> bool:
    t = toks[i]
    if t.kind != "id":
        return False
    nxt = toks[i + 1].val if i + 1 < len(toks) else ""
    prev = toks[i - 1].val if i > 0 else ""
    if t.val == "new":
        return True
    if t.val == "malloc" and nxt == "(":
        return True
    if t.val in R003_METHODS and prev in (".", "->") and nxt == "(":
        return True
    # std::vector<...> (and friends) instantiated in the body.
    if t.val in CONTAINER_NAMES and nxt == "<" and prev == "::" \
            and i >= 2 and toks[i - 2].val == "std":
        return True
    return False


def check_token_rules(fa, roles) -> list[Finding]:
    """R005 / R006 / R007 / R008 — identifier-level rules, one finding
    per line as before."""
    out = []
    toks = fa.lexed.tokens
    rel = fa.rel.replace("\\", "/")
    seam = rel.endswith(ATOMIC_SEAM_SUFFIX)
    seen: dict[str, set[int]] = {"R005": set(), "R006": set(),
                                 "R007": set(), "R008": set()}

    if "dist_guard" in roles:
        for d in fa.lexed.directives:
            path = d.include_path() or ""
            if path.endswith("greedcolor/dist/transport.hpp"):
                out.append(fa.finding("R006", d.line, MSG["R006_include"]))

    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        if "core" in roles and not seam and t.val == "atomic_ref" \
                and t.line not in seen["R005"]:
            seen["R005"].add(t.line)
            out.append(fa.finding("R005", t.line, MSG["R005"]))
        if "dist_guard" in roles and t.val in TRANSPORT_NAMES \
                and t.line not in seen["R006"]:
            seen["R006"].add(t.line)
            out.append(fa.finding("R006", t.line, MSG["R006_type"]))
        if "marker_guard" in roles and not seam and t.val in MARKER_NAMES \
                and (i + 1 >= len(toks) or toks[i + 1].val != "&") \
                and t.line not in seen["R007"]:
            seen["R007"].add(t.line)
            out.append(fa.finding("R007", t.line, MSG["R007"]))
        if "timing_guard" in roles and t.line not in seen["R008"]:
            if t.val == "omp_get_wtime" or (
                    t.val == "std" and i + 2 < len(toks)
                    and toks[i + 1].val == "::"
                    and toks[i + 2].val == "chrono"):
                seen["R008"].add(t.line)
                out.append(fa.finding("R008", t.line, MSG["R008"]))
    return out


# ---------------------------------------------------------------------------
# R011: static trace-macro balance, per control-flow path.


@dataclass
class _Flow:
    normal: dict | None          # net span delta, or None if all paths exit
    breaks: list = field(default_factory=list)
    continues: list = field(default_factory=list)


def _add(a: dict, b: dict) -> dict:
    out = dict(a)
    for k, v in b.items():
        out[k] = out.get(k, 0) + v
        if out[k] == 0:
            del out[k]
    return out


def _span_args(toks, i):
    """`toks[i]` is a trace macro id; return (span_name|None, next_i)."""
    if i + 1 >= len(toks) or toks[i + 1].val != "(":
        return None, i + 1
    close = skip_balanced(toks, i + 1)
    depth = 0
    args, cur = [], []
    for t in toks[i + 2:close - 1]:
        if t.val in "([{":
            depth += 1
        elif t.val in ")]}":
            depth -= 1
        if t.val == "," and depth == 0:
            args.append(cur)
            cur = []
        else:
            cur.append(t)
    args.append(cur)
    name = None
    if len(args) >= 2 and len(args[1]) == 1 and args[1][0].kind == "str":
        name = args[1][0].val.strip('"')
    return name, close


class _TraceWalker:
    def __init__(self, fa, func):
        self.fa = fa
        self.func = func
        self.findings: list[Finding] = []
        self.last_begin: dict[str, int] = {}

    def report(self, line: int, what: str, delta: dict) -> None:
        names = ", ".join(sorted(delta)) or "<span>"
        self.findings.append(self.fa.finding(
            "R011", line,
            f"GCOL_TRACE span(s) [{names}] unbalanced in "
            f"`{self.func.qual}`: {what}; every control-flow path must "
            f"close exactly what it opens (the exporter's orphan handling "
            f"is a diagnostic, not a contract)"))

    def scan_tokens(self, lo: int, hi: int, cur: dict) -> dict:
        toks = self.fa.lexed.tokens
        i = lo
        while i < hi:
            t = toks[i]
            if t.kind == "id" and t.val in TRACE_MACROS:
                name, nxt = _span_args(toks, i)
                if name is not None:
                    sign = +1 if t.val == "GCOL_TRACE_BEGIN" else -1
                    if sign > 0:
                        self.last_begin[name] = t.line
                    cur = _add(cur, {name: sign})
                i = nxt
                continue
            i += 1
        return cur

    def site(self, delta: dict) -> int:
        for name in sorted(delta):
            if name in self.last_begin:
                return self.last_begin[name]
        return self.func.line

def check_trace_balance(fa, roles) -> list[Finding]:
    if "trace_scope" not in roles:
        return []
    out: list[Finding] = []
    for func, tree in fa.func_trees():
        # Cheap pre-filter: no trace macros, no walk.
        if not any(t.kind == "id" and t.val in TRACE_MACROS
                   for t in fa.lexed.tokens[func.lbrace:func.rbrace]):
            continue
        w = _TraceWalker(fa, func)
        flow = _walk_function(w, tree)
        if flow.normal:
            w.report(w.site(flow.normal),
                     "still open at the end of the function", flow.normal)
        out.extend(w.findings)
    return out


def _walk_function(w: _TraceWalker, tree) -> _Flow:
    # `return` statements need the accumulated prefix to check "all
    # spans closed at return", so the sequence walk threads it through.
    return _walk_seq_checked(w, tree, {})


def _walk_seq_checked(w: _TraceWalker, stmts, entry: dict) -> _Flow:
    flow = _Flow(normal=dict(entry))
    for st in stmts:
        if flow.normal is None:
            break
        sub = _walk_checked(w, st, flow.normal)
        flow.breaks += sub.breaks
        flow.continues += sub.continues
        flow.normal = sub.normal
    return flow


def _walk_checked(w: _TraceWalker, st, cur: dict) -> _Flow:
    """Like _TraceWalker.walk but threading the *absolute* open-span
    state `cur` so exits can be checked in place. Returns absolute
    normals; breaks/continues carry absolute states too."""
    kind = st.kind
    if kind == "block":
        return _walk_seq_checked(w, st.children, cur)
    if kind == "simple":
        state = w.scan_tokens(st.start, st.end, dict(cur))
        sk = st.simple_kind
        if sk == "return":
            if state:
                w.report(w.site(state), "still open at a `return`", state)
            return _Flow(normal=None)
        if sk in ("throw", "goto"):
            return _Flow(normal=None)  # exempt: orphan handling's domain
        if sk == "break":
            f = _Flow(normal=None)
            f.breaks.append(state)
            return f
        if sk == "continue":
            f = _Flow(normal=None)
            f.continues.append(state)
            return f
        return _Flow(normal=state)
    if kind == "label":
        return _Flow(normal=dict(cur))
    if kind == "if":
        arms = st.children or []
        flows = [_walk_checked(w, a, cur) for a in arms]
        if len(flows) < 2:
            flows.append(_Flow(normal=dict(cur)))
        out = _Flow(normal=None)
        for f in flows:
            out.breaks += f.breaks
            out.continues += f.continues
        normals = [f.normal for f in flows if f.normal is not None]
        if len(normals) == 2 and normals[0] != normals[1]:
            diff = _add(normals[0], {k: -v for k, v in normals[1].items()})
            w.report(w.site(diff),
                     "if/else branches leave different spans open", diff)
        out.normal = normals[0] if normals else None
        return out
    if kind == "loop":
        body = _walk_seq_checked(w, st.children, cur)
        ends = body.continues + ([body.normal]
                                 if body.normal is not None else [])
        for state in ends:
            if state != cur:
                diff = _add(state, {k: -v for k, v in cur.items()})
                w.report(w.site(diff),
                         "a span crosses a loop-iteration boundary", diff)
        for state in body.breaks:
            if state != cur:
                diff = _add(state, {k: -v for k, v in cur.items()})
                w.report(w.site(diff), "a `break` path leaves spans open",
                         diff)
        return _Flow(normal=dict(cur))
    if kind == "switch":
        body = _walk_seq_checked(w, st.children, cur)
        for state in body.breaks + ([body.normal]
                                    if body.normal is not None else []):
            if state != cur:
                diff = _add(state, {k: -v for k, v in cur.items()})
                w.report(w.site(diff), "a switch path leaves spans open",
                         diff)
        out = _Flow(normal=dict(cur))
        out.continues = body.continues
        return out
    if kind == "try":
        if not st.children:
            return _Flow(normal=dict(cur))
        flow = _walk_checked(w, st.children[0], cur)
        for handler in st.children[1:]:
            h = _walk_checked(w, handler, cur)
            flow.breaks += h.breaks
            flow.continues += h.continues
            if h.normal is not None and h.normal != cur:
                diff = _add(h.normal, {k: -v for k, v in cur.items()})
                w.report(w.site(diff), "a catch handler leaves spans open",
                         diff)
        return flow
    return _Flow(normal=dict(cur))


# ---------------------------------------------------------------------------
# Data-sharing rules (R013 intraprocedural, R014, R016) over the clause
# model + symbol resolver. R013's interprocedural half and R015 live in
# effects.py, next to the effect summaries they consume.


# Classifications that mean "this write lands in memory other threads
# see" under the OpenMP data-sharing rules.
_SHARED_WRITE_CLASSES = {"param", "escaping-shared", "shared-clause",
                         "unknown", "reduction"}


def sharing_model(fa) -> list[dict]:
    """Every write site inside a parallel extent whose target is shared,
    with the justification that blesses it ("" = unjustified -> R013).
    This is the per-file slice of the race-surface report, so blessed
    sites are recorded too, not just violations."""
    toks = fa.lexed.tokens
    regions = fa.regions
    if not regions.regions:
        return []
    seam = seam_of(fa.rel)
    sites: list[dict] = []
    n = len(toks)
    for func, _tree in fa.func_trees():
        lo, hi = func.lbrace + 1, min(func.rbrace - 1, n)
        if not any(regions.parallel[i] for i in range(lo, hi)):
            continue
        syms = build_func_symbols(toks, func)
        for acc in scan_accesses(toks, lo, hi):
            if not acc.write or not regions.parallel[acc.tok]:
                continue
            chain = regions.enclosing(acc.tok)
            cls = classify_access(acc, syms, regions, chain)
            if cls not in _SHARED_WRITE_CLASSES:
                continue
            induction: set = set()
            for r in chain:
                induction |= r.induction
            just = ""
            if seam:
                just = f"seam:{seam}"
            elif cls == "reduction":
                just = "reduction-clause"
            elif regions.critical[acc.tok]:
                just = "omp-critical"
            elif regions.atomic[acc.tok]:
                just = "omp-atomic"
            elif fa.counted[acc.tok]:
                just = "counter-macro"
            elif acc.name in ("c", "colors"):
                just = "color-accessor-rule"   # R002/R012's domain
            elif acc.line in fa.atomic_ref_lines:
                just = "atomic-ref"
            elif acc.subscript_ids & induction:
                just = "iteration-owned-index"
            sites.append({"line": acc.line, "func": func.qual,
                          "var": acc.name, "cls": cls, "just": just,
                          "region_line": chain[-1].line if chain else 0})
    return sites


def check_race_rules(fa, roles, sites) -> list[Finding]:
    out: list[Finding] = []
    if "race" in roles:
        seen: set[int] = set()
        for s in sites:
            if s["just"] or s["line"] in seen:
                continue
            seen.add(s["line"])
            out.append(fa.finding(
                "R013", s["line"],
                f"write to `{s['var']}` (classified {s['cls']}) in "
                f"`{s['func']}` inside an OpenMP parallel region (pragma "
                f"at line {s['region_line']}) is not routed through a "
                f"blessed seam (kernels_common accessors / CounterSlots / "
                f"TraceBuffer), a reduction clause, an omp "
                f"critical/atomic section, or an iteration-owned index — "
                f"this is exactly the write the benign-race argument does "
                f"not cover"))
        out += _check_ref_captures(fa)
    if "sharing" in roles:
        out += _check_default_sharing(fa)
    return out


def _check_default_sharing(fa) -> list[Finding]:
    """R014: `omp parallel` constructs carry default(none) or name every
    escaping variable explicitly."""
    toks = fa.lexed.tokens
    out: list[Finding] = []
    for func, _tree in fa.func_trees():
        regs = [r for r in fa.regions.regions
                if r.kind in ("parallel", "parallel for")
                and func.lbrace <= r.start < func.rbrace]
        if not regs:
            continue
        syms = build_func_symbols(toks, func)
        for r in regs:
            if r.clauses.default == "none":
                continue
            listed = r.clauses.listed()
            unlisted: set[str] = set()
            for acc in scan_accesses(toks, r.start, r.end):
                cls = classify_access(acc, syms, fa.regions)
                if cls in ("param", "escaping-shared") \
                        and acc.name not in listed:
                    unlisted.add(acc.name)
            if r.clauses.default is None and not unlisted:
                continue   # every escaping variable has an explicit clause
            names = ", ".join(f"`{v}`" for v in sorted(unlisted)[:4])
            if len(unlisted) > 4:
                names += ", ..."
            if r.clauses.default is None:
                msg = (f"`omp {r.kind}` has no `default(none)` and leaves "
                       f"{names} implicitly shared; spell the data-sharing "
                       f"contract (default(none) plus explicit clauses) so "
                       f"the compiler and gcol-sa can check every capture")
            else:
                msg = (f"`omp {r.kind}` spells "
                       f"`default({r.clauses.default})`; engine regions "
                       f"must use default(none) so every escaping variable "
                       f"is an explicit, reviewable decision")
            out.append(fa.finding("R014", r.line, msg))
    return out


_LAMBDA_TAIL = {"(", "{", "mutable", "noexcept", "->", "constexpr"}


def _check_ref_captures(fa) -> list[Finding]:
    """R016: by-reference capture of enclosing-scope state escaping into
    a parallel-region lambda."""
    toks = fa.lexed.tokens
    n = len(toks)
    regions = fa.regions
    out: list[Finding] = []
    flagged: set[int] = set()
    for func, _tree in fa.func_trees():
        lo, hi = func.lbrace + 1, min(func.rbrace - 1, n)
        if not any(regions.parallel[i] for i in range(lo, hi)):
            continue
        syms = None
        i = lo
        while i < hi:
            t = toks[i]
            if t.val != "[" or not regions.parallel[i]:
                i += 1
                continue
            prev = toks[i - 1]
            if prev.kind in ("id", "num", "str") or prev.val in (")", "]"):
                i += 1
                continue             # subscript, not a lambda-intro
            if i + 1 < n and toks[i + 1].val == "[":
                i = skip_balanced(toks, i)
                continue             # [[attribute]]
            close = skip_balanced(toks, i)       # one past ']'
            if close >= n or toks[close].val not in _LAMBDA_TAIL:
                i += 1
                continue
            if syms is None:
                syms = build_func_symbols(toks, func)
            culprit = _lambda_escape(fa, toks, syms, i, close, n)
            if culprit and t.line not in flagged:
                flagged.add(t.line)
                out.append(fa.finding(
                    "R016", t.line,
                    f"lambda inside an OpenMP parallel region captures "
                    f"`{culprit}` by reference, aliasing state declared "
                    f"outside the region invisibly to the data-sharing "
                    f"clauses; capture by value, or route the shared "
                    f"write through a blessed seam"))
            i = close
    return out


def _lambda_escape(fa, toks, syms, intro: int, close: int, n: int):
    """Name of an escaping by-ref capture of the lambda at `intro`,
    or None if the capture list is benign."""
    from .symbols import Access

    def escapes(name: str, at: int):
        acc = Access(name=name, tok=at, line=toks[at].line,
                     write=False, chained=False, is_call=False)
        return classify_access(acc, syms, fa.regions) in (
            "param", "escaping-shared")

    default_ref = False
    k = intro + 1
    while k < close - 1:
        v = toks[k].val
        if v == "&":
            if k + 1 < close - 1 and toks[k + 1].kind == "id":
                if escapes(toks[k + 1].val, intro):
                    return toks[k + 1].val
                k += 2
            else:
                default_ref = True
                k += 1
        else:
            k += 1
    if not default_ref:
        return None
    # [&] aliases the entire enclosing frame: find the body and check
    # whether any identifier it uses lives outside the region.
    j = close
    if j < n and toks[j].val == "(":
        j = skip_balanced(toks, j)
    while j < n and toks[j].val not in ("{", ";"):
        j += 1
    if j >= n or toks[j].val != "{":
        return None
    body_end = skip_balanced(toks, j)
    for k in range(j + 1, min(body_end - 1, n)):
        t = toks[k]
        if t.kind != "id" or _MACRO_ID.fullmatch(t.val):
            continue
        p = toks[k - 1].val
        if p in (".", "->", "::"):
            continue
        if t.val in syms.params or t.val in syms.decls:
            if escapes(t.val, intro):
                return t.val
    return None


# ---------------------------------------------------------------------------
# Program rules (R009, R010, R012) over the call graph.


def _mk_finding(facts, frel, line, rule, message) -> Finding:
    ctx = ""
    lines = facts.source_lines.get(frel)
    if lines and 1 <= line <= len(lines):
        ctx = lines[line - 1].strip()
    return Finding(path=facts.abs_paths.get(frel, frel), line=line,
                   rule=rule, message=message, context=ctx)


def check_interproc_alloc(facts) -> list[Finding]:
    """R009: any function reachable (call depth >= 1) from an OpenMP
    region body that allocates, throws, or calls `.at()`."""
    out, seen = [], set()
    reached = facts.reachable_from_regions(require_parallel=False)
    for (frel, func), chain in sorted(reached.items(),
                                      key=lambda kv: (kv[0][0],
                                                      kv[0][1].line)):
        for site in func.allocs:
            key = (frel, site["line"])
            if key in seen:
                continue
            seen.add(key)
            what = site["what"]
            verb = "throws" if what == "throw" else f"calls `{what}`"
            out.append(_mk_finding(
                facts, frel, site["line"], "R009",
                f"`{func.qual}` {verb} and is reachable from an OpenMP "
                f"region body ({chain}); allocation and unwinding inside "
                f"a parallel region serialize threads on the heap lock — "
                f"hoist it to the driver or pre-size the workspace"))
            break  # one finding per reached function keeps the gate readable
    return out


def check_seam_escape(facts) -> list[Finding]:
    """R012: raw color-array accesses in functions reachable from a
    parallel region, outside the kernels_common.hpp accessor seam."""
    out, seen = [], set()
    reached = facts.reachable_from_regions(require_parallel=True)
    for (frel, func), chain in sorted(reached.items(),
                                      key=lambda kv: (kv[0][0],
                                                      kv[0][1].line)):
        if frel.replace("\\", "/").endswith(ATOMIC_SEAM_SUFFIX):
            continue  # the accessor seam IS the sanctioned implementation
        for line in func.color_sites:
            key = (frel, line)
            if key in seen:
                continue
            seen.add(key)
            out.append(_mk_finding(
                facts, frel, line, "R012",
                f"raw color-array access in `{func.qual}`, which is "
                f"reachable from a parallel region ({chain}) outside the "
                f"kernels_common.hpp accessor seam; route it through "
                f"load_color/store_color/exchange_uncolor so the audit "
                f"ledgers and gcol-mc schedule points see it"))
    return out


def check_error_propagation(facts) -> list[Finding]:
    """R010: every ErrorCode enumerator constructed in src/ must be
    reachable from the to_string / is_input_error / exit-code mapping
    layer somewhere in the program."""
    out = []
    mapped = set()
    for ef in facts.error_facts:
        mapped.update(ef["mapped"])
    reported = set()
    for ef in facts.error_facts:
        if not ef["in_scope"]:
            continue
        for code, line in ef["constructed"]:
            if code in mapped or code in reported:
                continue
            reported.add(code)
            out.append(_mk_finding(
                facts, ef["rel"], line, "R010",
                f"gcol::Error constructed with ErrorCode::{code}, but no "
                f"to_string / is_input_error / exit-code mapping anywhere "
                f"in the program handles that enumerator — the error kind "
                f"would be silently swallowed at the 4xx-vs-5xx boundary"))
    return out
