"""Per-file analysis: lex, parse, mark OpenMP regions, run the
file-scope rules, and extract the whole-program facts (call sites,
allocation sites, color-array sites, ErrorCode construction/mapping,
includes) that the program rules consume.

Everything a file contributes is a JSON-serializable payload keyed by
the file's content hash, which is what makes `--changed-only` and warm
repo-gate runs sub-second: an unchanged file never gets re-parsed.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import re
import sys

from . import ENGINE_VERSION
from .callgraph import FuncFact, ProgramFacts
from .lexer import lex
from .omp import mark_file
from .parser import find_functions, parse_function_body
from .rules import (ALLOC_FREE_FUNCS, Finding, KEYWORDS_NOT_CALLS,
                    R009_METHODS, check_pragma_rules, check_race_rules,
                    check_region_rules, check_token_rules,
                    check_trace_balance, sharing_model)
from .symbols import ALIASING_KINDS, param_table, scan_accesses

REPO_MARKERS = ("CMakeLists.txt", "CMakePresets.json")

ALL_ROLES = frozenset({"core", "dist_guard", "marker_guard",
                       "timing_guard", "trace_scope", "race"})

# All-caps identifiers are macro invocations by repo convention
# (GCOL_TRACE_*, GCOL_CONTRACT, TEST, EXPECT_EQ...); they are not call
# edges.
_MACRO_ID = re.compile(r"[A-Z][A-Z0-9_]*\Z")

_ERROR_MAPPERS = ("to_string", "is_input_error")


class GateError(Exception):
    """The gate itself cannot do its job (exit 2, never exit 1)."""


def find_root(start: str) -> str:
    d = os.path.abspath(start)
    while True:
        if all(os.path.exists(os.path.join(d, m)) for m in REPO_MARKERS):
            return d
        parent = os.path.dirname(d)
        if parent == d:
            return os.path.abspath(start)
        d = parent


def collect_files(root: str, compile_commands: str | None) -> list[str]:
    """Same file set as the old gate: compile-database TUs (or the
    source globs) plus every header under src/, minus build/_deps."""
    files: set[str] = set()
    if compile_commands:
        try:
            with open(compile_commands, encoding="utf-8") as fh:
                for entry in json.load(fh):
                    path = entry.get("file", "")
                    if not os.path.isabs(path):
                        path = os.path.join(entry.get("directory", ""), path)
                    path = os.path.realpath(path)
                    if path.startswith(os.path.realpath(root) + os.sep):
                        files.add(path)
        except (OSError, ValueError) as exc:
            raise GateError(
                f"cannot read {compile_commands}: {exc}") from exc
    else:
        for pat in ("src/**/*.cpp", "bench/**/*.cpp", "examples/**/*.cpp",
                    "tests/**/*.cpp"):
            files.update(
                os.path.realpath(p)
                for p in glob.glob(os.path.join(root, pat), recursive=True))
    files.update(
        os.path.realpath(p)
        for p in glob.glob(os.path.join(root, "src/**/*.hpp"),
                           recursive=True))
    files = {f for f in files
             if f"{os.sep}build" not in f
             and f"{os.sep}_deps{os.sep}" not in f}
    return sorted(files)


def roles_for(rel: str, explicit: bool) -> frozenset:
    rel = rel.replace(os.sep, "/")
    if explicit:
        # R014's scope is architectural (src/core + src/dist), so the
        # fixture corpus opts in by name — keeping the pre-existing
        # R001-R012 fixtures (and their golden verdicts) byte-stable.
        roles = set(ALL_ROLES)
        if "r014" in os.path.basename(rel):
            roles.add("sharing")
        return frozenset(roles)
    roles = set()
    if rel.startswith("src/core/") or rel.startswith("src/dist/"):
        roles.add("sharing")
    if rel.startswith("src/"):
        roles.add("race")
    if rel.startswith("src/core/"):
        roles.add("core")
    if rel.startswith("src/") and not rel.startswith("src/dist/"):
        roles.add("dist_guard")
    base = os.path.basename(rel)
    if rel.startswith("src/core/") and ("bgpc" in base or "d2gc" in base):
        roles.add("marker_guard")
    if rel.startswith("src/core/") or rel.startswith("src/dist/"):
        roles.add("timing_guard")
    if rel.startswith("src/"):
        roles.add("trace_scope")
    return frozenset(roles)


# ---------------------------------------------------------------------------


class FileAnalysis:
    """One file's lexed/parsed view plus the helpers the rules use."""

    def __init__(self, path: str, rel: str, text: str):
        import time
        self.path = path
        self.rel = rel
        self.timings: dict[str, float] = {}
        self.lines = text.split("\n")
        t0 = time.perf_counter()
        self.lexed = lex(text)
        t1 = time.perf_counter()
        self.funcs = find_functions(self.lexed.tokens)
        self._trees = None
        self.atomic_ref_lines = {
            t.line for t in self.lexed.tokens
            if t.kind == "id" and t.val == "atomic_ref"}
        self.func_trees()
        t2 = time.perf_counter()
        self.regions = mark_file(self.func_trees(), self.lexed.tokens,
                                 len(self.lexed.tokens))
        # Token extents inside GCOL_COUNT(...) — the CounterSlots seam's
        # access macro; increments it wraps target per-thread slots (and
        # compile out with counters off), so the race rules bless them.
        toks = self.lexed.tokens
        self.counted = bytearray(len(toks))
        for i, t in enumerate(toks):
            if t.kind == "id" and t.val == "GCOL_COUNT" \
                    and i + 1 < len(toks) and toks[i + 1].val == "(":
                from .parser import skip_balanced
                for j in range(i + 1, skip_balanced(toks, i + 1)):
                    self.counted[j] = 1
        t3 = time.perf_counter()
        self.timings["lex"] = t1 - t0
        self.timings["parse"] = t2 - t1
        self.timings["regions"] = t3 - t2

    def func_trees(self):
        if self._trees is None:
            self._trees = [
                (f, parse_function_body(self.lexed.tokens, f,
                                        self.lexed.directives))
                for f in self.funcs]
        return self._trees

    def finding(self, rule: str, line: int, message: str) -> Finding:
        ctx = ""
        if 1 <= line <= len(self.lines):
            ctx = self.lines[line - 1].strip()
        return Finding(path=self.path, line=line, rule=rule,
                       message=message, context=ctx)


def _function_facts(fa: FileAnalysis) -> list[FuncFact]:
    toks = fa.lexed.tokens
    n = len(toks)
    out = []
    for func, _tree in fa.func_trees():
        calls, allocs, colors = [], [], []
        for i in range(func.lbrace + 1, min(func.rbrace - 1, n)):
            t = toks[i]
            if t.kind != "id":
                continue
            nxt = toks[i + 1].val if i + 1 < n else ""
            prev = toks[i - 1].val if i > 0 else ""
            if nxt == "(" and t.val not in KEYWORDS_NOT_CALLS \
                    and not _MACRO_ID.fullmatch(t.val):
                prev_kind = toks[i - 1].kind if i > 0 else ""
                calls.append({"name": t.val, "line": t.line,
                              "parallel": bool(fa.regions.parallel[i]),
                              "hot": bool(fa.regions.hot[i]),
                              "dotted": prev in (".", "->"),
                              # `std::fill`, `steady_clock::now`, ... —
                              # a library call spelled with its home
                              # namespace is a deliberate, reviewable
                              # choice; it must not widen a summary to
                              # calls_unknown
                              "qualified": prev == "::",
                              # `Type name(args)` — a paren-init
                              # declaration, not a call edge worth
                              # widening an effect summary over
                              "decl_like": prev == ">" or (
                                  prev_kind == "id"
                                  and prev not in KEYWORDS_NOT_CALLS)})
            what = None
            if t.val == "new":
                what = "new"
            elif t.val in ALLOC_FREE_FUNCS and nxt == "(":
                what = t.val
            elif t.val in R009_METHODS and prev in (".", "->") \
                    and nxt == "(":
                what = t.val
            elif t.val == "throw":
                what = "throw"
            if what:
                allocs.append({"line": t.line, "what": what})
            if t.val in ("c", "colors") and nxt == "[" \
                    and t.line not in fa.atomic_ref_lines:
                colors.append(t.line)
        params = param_table(toks, func)
        writes, reads_shared, seen_writes = [], False, set()
        for acc in scan_accesses(toks, func.lbrace + 1,
                                 min(func.rbrace - 1, n)):
            kind = params.get(acc.name)
            if kind not in ALIASING_KINDS:
                continue
            # A ref touches caller memory on any access; ptr/view only
            # through a deref/subscript/member chain (a direct store
            # just rebinds the thread-local copy).
            if not (kind == "ref" or acc.chained):
                continue
            if acc.write:
                key = (acc.line, acc.name)
                if key not in seen_writes:
                    seen_writes.add(key)
                    writes.append({"line": acc.line, "base": acc.name,
                                   "idx": sorted(acc.subscript_ids),
                                   "counted": bool(fa.counted[acc.tok])})
            else:
                reads_shared = True
        out.append(FuncFact(func.name, func.qual, func.line,
                            calls, allocs, colors, params=params,
                            writes=writes, reads_shared=reads_shared))
    return out


def _error_facts(fa: FileAnalysis, in_scope: bool) -> dict:
    toks = fa.lexed.tokens
    n = len(toks)
    mapper_ranges = [(f.lbrace, f.rbrace) for f in fa.funcs
                     if f.name in _ERROR_MAPPERS]
    constructed, mapped = [], set()
    for i, t in enumerate(toks):
        if t.kind != "id" or t.val != "ErrorCode":
            continue
        if i + 2 >= n or toks[i + 1].val != "::" or toks[i + 2].kind != "id":
            continue
        code = toks[i + 2].val
        line = toks[i + 2].line
        prev = toks[i - 1].val if i > 0 else ""
        nxt = toks[i + 3].val if i + 3 < n else ""
        if prev == "case" or nxt in ("==", "!=") or prev in ("==", "!=") \
                or any(lo < i < hi for lo, hi in mapper_ranges):
            mapped.add(code)
            continue
        for j in range(max(0, i - 6), i):
            if toks[j].kind == "id" and toks[j].val in ("Error", "raise") \
                    and j + 1 < n and toks[j + 1].val in ("(", "{"):
                constructed.append([code, line])
                break
        # A bare mention (default argument, using-declaration) is
        # neither constructed nor mapped.
    return {"rel": fa.rel, "in_scope": in_scope,
            "constructed": constructed, "mapped": sorted(mapped)}


def analyze_text(path: str, rel: str, text: str, explicit: bool) -> dict:
    """Full per-file analysis -> JSON-serializable payload."""
    import time
    fa = FileAnalysis(path, rel, text)
    roles = roles_for(rel, explicit)
    t0 = time.perf_counter()
    sites = sharing_model(fa)
    findings: list[Finding] = []
    findings += check_pragma_rules(fa, roles)
    findings += check_region_rules(fa, roles)
    findings += check_token_rules(fa, roles)
    findings += check_trace_balance(fa, roles)
    findings += check_race_rules(fa, roles, sites)
    t1 = time.perf_counter()
    includes = []
    for d in fa.lexed.directives:
        p = d.include_path()
        if p:
            includes.append(p)
    payload = {
        "findings": [{"line": f.line, "rule": f.rule,
                      "message": f.message, "context": f.context}
                     for f in findings],
        "functions": [f.to_dict() for f in _function_facts(fa)],
        "errors": _error_facts(fa, explicit
                               or rel.replace(os.sep, "/")
                                     .startswith("src/")),
        "includes": includes,
        "race_sites": sites,
    }
    t2 = time.perf_counter()
    fa.timings["rules"] = t1 - t0
    fa.timings["facts"] = t2 - t1
    payload["timings"] = dict(fa.timings)
    return payload


# ---------------------------------------------------------------------------
# Content-hash cache


def _cache_key(rel: str, text: str, explicit: bool) -> str:
    h = hashlib.sha256()
    h.update(ENGINE_VERSION.encode())
    h.update(b"\x00x" if explicit else b"\x00r")
    h.update(rel.encode("utf-8", "replace"))
    h.update(b"\x00")
    h.update(text.encode("utf-8", "replace"))
    return h.hexdigest()[:32]


class AnalyzedFile:
    __slots__ = ("path", "rel", "lines", "payload", "cached")

    def __init__(self, path, rel, lines, payload, cached):
        self.path = path
        self.rel = rel
        self.lines = lines
        self.payload = payload
        self.cached = cached


def _analyze_one(task) -> AnalyzedFile:
    """Worker for one file: read, cache-probe, compute, cache-store.
    Module-level so multiprocessing can pickle it."""
    root, path, explicit, cache_dir = task
    try:
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
    except OSError as exc:
        raise GateError(f"cannot read {path}: {exc}") from exc
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    payload = None
    cached = False
    key = _cache_key(rel, text, explicit)
    cpath = os.path.join(cache_dir, key + ".json") if cache_dir else None
    if cpath and os.path.exists(cpath):
        try:
            with open(cpath, encoding="utf-8") as fh:
                payload = json.load(fh)
            cached = True
        except (OSError, ValueError):
            payload = None  # corrupt cache entry: recompute
    if payload is None:
        payload = analyze_text(path, rel, text, explicit)
        if cpath:
            try:
                os.makedirs(cache_dir, exist_ok=True)
                tmp = cpath + f".tmp{os.getpid()}"
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, cpath)
            except OSError:
                pass  # cache is best-effort
    return AnalyzedFile(path, rel, text.split("\n"), payload, cached)


def run_analysis(root: str, paths: list[str], explicit: bool,
                 cache_dir: str | None,
                 jobs: int = 1) -> list[AnalyzedFile]:
    tasks = [(root, path, explicit, cache_dir) for path in paths]
    if jobs > 1 and len(tasks) > 1:
        import multiprocessing
        with multiprocessing.Pool(min(jobs, len(tasks))) as pool:
            chunk = max(1, len(tasks) // (4 * jobs))
            return pool.map(_analyze_one, tasks, chunksize=chunk)
    return [_analyze_one(t) for t in tasks]


def build_program(analyzed: list[AnalyzedFile],
                  explicit: bool) -> tuple[ProgramFacts, dict]:
    facts = ProgramFacts()
    includes: dict[str, list[str]] = {}
    for af in analyzed:
        rel = af.rel
        funcs = [FuncFact.from_dict(d) for d in af.payload["functions"]]
        in_graph = explicit or rel.startswith("src/")
        facts.add_file(rel, af.path, af.lines, funcs,
                       af.payload["errors"],
                       in_graph=in_graph,
                       r009_entry=in_graph,
                       r012_entry=explicit or rel.startswith("src/core/"))
        includes[rel] = af.payload["includes"]
    return facts, includes


def file_findings(analyzed: list[AnalyzedFile]) -> list[Finding]:
    out = []
    for af in analyzed:
        for d in af.payload["findings"]:
            out.append(Finding(path=af.path, line=d["line"],
                               rule=d["rule"], message=d["message"],
                               context=d.get("context", "")))
    return out


def changed_rels(root: str, diff_base: str | None) -> set[str]:
    """Files touched per git (working tree + optional diff base)."""
    import subprocess
    cmds = [["git", "-C", root, "diff", "--name-only", "HEAD"],
            ["git", "-C", root, "ls-files", "--others",
             "--exclude-standard"]]
    if diff_base:
        cmds.append(["git", "-C", root, "diff", "--name-only",
                     diff_base, "HEAD"])
    rels: set[str] = set()
    for cmd in cmds:
        try:
            res = subprocess.run(cmd, capture_output=True, text=True,
                                 check=False)
        except OSError as exc:
            raise GateError(f"git unavailable for --changed-only: "
                            f"{exc}") from exc
        if res.returncode != 0:
            raise GateError(f"`{' '.join(cmd)}` failed: "
                            f"{res.stderr.strip()}")
        rels.update(line.strip().replace(os.sep, "/")
                    for line in res.stdout.splitlines() if line.strip())
    return rels
