"""Bootstrap so both `python3 -m gcol_sa` (from tools/) and
`python3 tools/gcol_sa` (directory execution) work."""

import os
import sys

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from gcol_sa.cli import entry
else:
    from .cli import entry

entry()
