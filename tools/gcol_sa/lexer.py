"""A C++ tokenizer that the regex lint never had.

One master regex scans the file into tokens; comments are dropped,
string/char/raw-string literals become single tokens (so an
`omp critical` inside an R"(...)" documentation string can never be
mistaken for a pragma), backslash-newline continuations are joined, and
preprocessor directives are lifted out of the code stream as logical
units with continuations already spliced (a multi-line `#pragma omp`
is one directive).

The output is a `LexedFile`:
  tokens      code tokens only (id / num / str / chr / rawstr / punct),
              each carrying its 1-based physical line
  directives  every preprocessor logical line as a `Directive` with its
              own token list and the index of the code token that
              follows it (the attachment point for pragma extents)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


class Token:
    __slots__ = ("kind", "val", "line")

    def __init__(self, kind: str, val: str, line: int):
        self.kind = kind
        self.val = val
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.val!r}, L{self.line})"


@dataclass
class Directive:
    line: int                       # first physical line of the directive
    tokens: list = field(default_factory=list)  # code tokens (after '#')
    attach: int = -1                # index of the next code token after it

    def ids(self) -> list[str]:
        return [t.val for t in self.tokens if t.kind == "id"]

    def is_omp(self) -> bool:
        ids = self.ids()
        return len(ids) >= 2 and ids[0] == "pragma" and ids[1] == "omp"

    def is_include(self) -> bool:
        ids = self.ids()
        return bool(ids) and ids[0] == "include"

    def include_path(self) -> str | None:
        """The path of an #include directive, for both "..." and <...>."""
        if not self.is_include():
            return None
        toks = [t for t in self.tokens if t.kind != "id" or t.val != "include"]
        for i, t in enumerate(toks):
            if t.kind == "str":
                return t.val.strip('"')
            if t.kind == "punct" and t.val == "<":
                parts = []
                for u in toks[i + 1:]:
                    if u.kind == "punct" and u.val == ">":
                        return "".join(parts)
                    parts.append(u.val)
                return "".join(parts)
        return None


@dataclass
class LexedFile:
    tokens: list
    directives: list
    nlines: int


# Order matters: raw strings before plain strings before char literals
# before numbers (digit separators like 1'000) before identifiers.
_MASTER = re.compile(
    r"""
      (?P<ws>[\ \t\v\f\r]+)
    | (?P<cont>\\\r?\n)
    | (?P<nl>\n)
    | (?P<block_comment>/\*(?:[^*]|\*(?!/))*(?:\*/|\Z))
    | (?P<line_comment>//(?:\\\r?\n|[^\n])*)
    | (?P<rawstr>(?:u8|u|U|L)?R"(?P<delim>[^()\s\\]{0,16})\(
        (?:(?!\)(?P=delim)").)*?\)(?P=delim)")
    | (?P<str>(?:u8|u|U|L)?"(?:\\.|[^"\\\n])*")
    | (?P<chr>(?:u8|u|U|L)?'(?:\\.|[^'\\\n])+')
    | (?P<num>\.?\d(?:[\w.]|'(?=\w)|[eEpP][+-])*)
    | (?P<id>[A-Za-z_]\w*)
    | (?P<punct><<=|>>=|->\*|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=
        |&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\#\#|.)
    """,
    re.VERBOSE | re.DOTALL,
)

_CODE_KINDS = ("rawstr", "str", "chr", "num", "id", "punct")


def lex(text: str) -> LexedFile:
    """Tokenize `text`; never raises on malformed input (the scanner is
    a gate, not a compiler — a stray quote degrades to punct tokens)."""
    tokens: list[Token] = []
    directives: list[Directive] = []
    line = 1
    at_line_start = True      # only ws/comments seen since the last newline
    directive: Directive | None = None

    for m in _MASTER.finditer(text):
        kind = m.lastgroup
        val = m.group()
        if kind == "delim":  # inner group of rawstr; never the lastgroup
            continue
        if kind == "ws":
            pass
        elif kind == "cont":
            # Spliced line: the directive (or token stream) continues.
            pass
        elif kind == "nl":
            if directive is not None:
                directive.attach = len(tokens)
                directives.append(directive)
                directive = None
            at_line_start = True
        elif kind in ("block_comment", "line_comment"):
            pass  # dropped; newlines inside still advance `line` below
        elif kind == "punct" and val == "#" and at_line_start \
                and directive is None:
            directive = Directive(line=line)
            at_line_start = False
        else:
            tok = Token(kind, val, line)
            if directive is not None:
                directive.tokens.append(tok)
            else:
                tokens.append(tok)
            at_line_start = False
        line += val.count("\n")

    if directive is not None:  # directive at EOF without a newline
        directive.attach = len(tokens)
        directives.append(directive)
    return LexedFile(tokens=tokens, directives=directives, nlines=line)
