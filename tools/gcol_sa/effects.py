"""Per-function effect summaries propagated to a fixpoint over the
name-based call graph, the program half of the race rules (R013's
interprocedural write chains, R015's hot-call effect check), and the
machine-readable race-surface report (`gcol-sa-race-v1`).

An effect summary is six bits per function:

  writes_shared      stores through an aliasing (pointer/reference/array)
                     parameter — memory the caller shares
  reads_shared       loads through an aliasing parameter
  allocates          heap traffic or unwinding (R009's fact set)
  blocks_io          a call that can block: stdio, file I/O, sleeps
  touches_color_seam raw color-array sites or calls into the accessor seam
  calls_unknown      a call that resolves to no repo definition and is on
                     no known-benign list — the summary must widen

Local bits come straight from the indexed FuncFacts; the fixpoint unions
every repo-resolved callee's bits into the caller until nothing changes,
so cycles converge and an unknown leaf widens everything that can reach
it. Over-approximation is the gate's bias, same as the call graph."""

from __future__ import annotations

from .baseline import fingerprint
from .rules import Finding, SEAM_FILES, _mk_finding, seam_of

# Calls that can block the calling thread (and with it, the whole team
# at the next barrier). Matched on non-dotted, unresolved call names.
BLOCKING_FUNCS = {
    "printf", "fprintf", "vfprintf", "puts", "fputs", "fputc", "putchar",
    "fopen", "fclose", "fread", "fwrite", "fflush", "fgets", "getline",
    "fscanf", "scanf", "getchar", "system", "popen", "sleep", "usleep",
    "nanosleep", "sleep_for", "sleep_until", "wait", "recv", "send",
    "accept", "connect", "poll", "select", "flush",
}

# Unresolved, non-dotted call names that are known effect-free (or
# thread-local) — they must not widen a summary to calls_unknown.
KNOWN_BENIGN = {
    # OpenMP runtime queries
    "omp_get_thread_num", "omp_get_num_threads", "omp_get_max_threads",
    "omp_in_parallel", "omp_get_wtime",
    # math / bit twiddling / cheap libc
    "min", "max", "abs", "labs", "fabs", "sqrt", "log", "log2", "exp",
    "pow", "floor", "ceil", "round", "popcount", "countr_zero",
    "countr_one", "countl_zero", "countl_one", "bit_ceil", "bit_width",
    "memcpy", "memset", "memmove", "memcmp", "strlen", "strcmp",
    "strncmp", "snprintf", "isdigit", "isspace", "tolower", "toupper",
    "strtol", "strtoul", "strtod", "atoi",
    # std helpers the tokenizer sees as bare ids
    "move", "forward", "swap", "get", "make_pair", "make_tuple", "tie",
    "distance", "exchange", "as_bytes", "assume_aligned", "launder",
    "to_string", "from_chars", "to_chars", "clamp", "midpoint",
    "declval", "addressof", "hash", "invoke", "apply",
    # assertion / termination (they end the program, not block it)
    "assert", "abort", "exit", "terminate", "unreachable",
}

COLOR_SEAM_FUNCS = {"load_color", "store_color", "exchange_uncolor",
                    "prefetch_color"}

EFFECT_BITS = ("writes_shared", "reads_shared", "allocates", "blocks_io",
               "touches_color_seam", "calls_unknown")


class EffectSummary:
    __slots__ = EFFECT_BITS + ("evidence",)

    def __init__(self):
        for bit in EFFECT_BITS:
            setattr(self, bit, False)
        self.evidence: dict[str, str] = {}   # bit -> human-readable why

    def set(self, bit: str, why: str) -> bool:
        if getattr(self, bit):
            return False
        setattr(self, bit, True)
        self.evidence.setdefault(bit, why)
        return True

    def bits(self) -> tuple:
        return tuple(bit for bit in EFFECT_BITS if getattr(self, bit))

    def to_dict(self) -> dict:
        return {"bits": list(self.bits()), "evidence": dict(self.evidence)}


def _local_summary(rel: str, func) -> EffectSummary:
    s = EffectSummary()
    if func.writes:
        w = func.writes[0]
        s.set("writes_shared",
              f"writes `{w['base']}` (aliasing parameter) at "
              f"{rel}:{w['line']}")
    if func.reads_shared:
        s.set("reads_shared", f"reads through an aliasing parameter in "
                              f"`{func.qual}`")
    if func.allocs:
        a = func.allocs[0]
        what = "throws" if a["what"] == "throw" else f"calls `{a['what']}`"
        s.set("allocates", f"{what} at {rel}:{a['line']}")
    if func.color_sites or seam_of(rel):
        s.set("touches_color_seam", f"color-array site in `{func.qual}`")
    return s


def compute_summaries(facts) -> dict:
    """{(rel, FuncFact): EffectSummary} for every function in the call
    graph, propagated to a fixpoint over repo-resolved call edges."""
    defs = facts.defs_by_name()
    summaries: dict = {}
    callers_of: dict = {}   # (rel, func) -> [(rel, func) callers]
    order: list = []
    for rel in sorted(facts.graph_rels):
        for func in facts.files.get(rel, ()):
            key = (rel, func)
            summaries[key] = _local_summary(rel, func)
            order.append(key)
    # Call-derived local bits + reverse edges for the worklist.
    for key in order:
        rel, func = key
        s = summaries[key]
        for call in func.calls:
            name = call["name"]
            targets = defs.get(name, ())
            if targets:
                if name in COLOR_SEAM_FUNCS:
                    s.set("touches_color_seam",
                          f"calls `{name}` at {rel}:{call['line']}")
                for tkey in targets:
                    if tkey != key:
                        callers_of.setdefault(tkey, []).append(key)
                continue
            if name in BLOCKING_FUNCS and not call.get("decl_like"):
                s.set("blocks_io", f"calls `{name}` at {rel}:{call['line']}")
                continue
            if call.get("dotted") or call.get("qualified"):
                continue   # method / namespace-qualified library call:
                #            a concrete, reviewable target — not widening
            if call.get("decl_like"):
                continue   # `Type name(args)` — a declaration, not a call
            if name in COLOR_SEAM_FUNCS:
                s.set("touches_color_seam",
                      f"calls `{name}` at {rel}:{call['line']}")
            elif name not in KNOWN_BENIGN and not name.startswith("GCOL") \
                    and not name.startswith("__builtin"):
                s.set("calls_unknown",
                      f"calls `{name}` (no definition in the program, not "
                      f"on a known-benign list) at {rel}:{call['line']}")
    # Fixpoint: union callee bits into callers until stable. Cycles
    # converge because bits only ever turn on.
    work = list(order)
    while work:
        key = work.pop()
        s = summaries[key]
        for ckey in callers_of.get(key, ()):  # propagate to callers
            cs = summaries[ckey]
            changed = False
            for bit in EFFECT_BITS:
                if getattr(s, bit) and not getattr(cs, bit):
                    cs.set(bit, f"via `{key[1].name}`: "
                                f"{s.evidence.get(bit, bit)}")
                    changed = True
            if changed:
                work.append(ckey)
    return summaries


# ---------------------------------------------------------------------------
# R013 (interprocedural half): shared-write chains reachable from
# parallel regions, outside the seam files.


def _index_delegated(func, site) -> bool:
    """True for `out[v] = ...` where every subscript id is one of the
    callee's by-value parameters: the callee writes only where the call
    site tells it to, so ownership of the slot is the caller's decision
    — and the intraprocedural rule already judges each call site's
    index. Flagging here would re-litigate it one frame down."""
    idx = site.get("idx") or []
    return bool(idx) and all(
        func.params.get(name) == "value" for name in idx)


def check_shared_write_chains(facts) -> list[Finding]:
    out: list[Finding] = []
    seen: set = set()
    reached = facts.reachable_from_regions(require_parallel=True)
    for (frel, func), chain in sorted(reached.items(),
                                      key=lambda kv: (kv[0][0],
                                                      kv[0][1].line)):
        if seam_of(frel):
            continue   # seam implementations are the sanctioned writers
        for site in func.writes:
            if site["base"] in ("c", "colors"):
                continue   # R012's domain: the color-array seam escape
            if site.get("counted"):
                continue   # GCOL_COUNT(...): the CounterSlots seam macro
            if _index_delegated(func, site):
                continue   # caller-chosen index; judged at the call site
            key = (frel, site["line"])
            if key in seen:
                continue
            seen.add(key)
            out.append(_mk_finding(
                facts, frel, site["line"], "R013",
                f"`{func.qual}` writes through its aliasing parameter "
                f"`{site['base']}` and is reachable from an OpenMP "
                f"parallel region ({chain}); every thread of the team can "
                f"race on the pointed-to memory outside the blessed seams "
                f"— route the store through a seam or make the callee "
                f"operate on thread-owned state"))
            break   # one finding per reached function, like R009/R012
    return out


# ---------------------------------------------------------------------------
# R015: hot-loop call sites checked against callee effect summaries.

# Effects that disqualify a callee from an omp-for body. `allocates`
# stays R009's finding so one defect maps to one rule.
_HOT_BAD_BITS = ("blocks_io", "calls_unknown")


def check_hot_call_effects(facts, summaries) -> list[Finding]:
    defs = facts.defs_by_name()
    out: list[Finding] = []
    seen: set = set()
    for rel in sorted(facts.entry_r009):
        for func in facts.files.get(rel, ()):
            for call in func.calls:
                if not call["hot"]:
                    continue
                key = (rel, call["line"])
                if key in seen:
                    continue
                name = call["name"]
                targets = defs.get(name, ())
                if targets:
                    for tkey in targets:
                        s = summaries.get(tkey)
                        if s is None:
                            continue
                        bad = [b for b in _HOT_BAD_BITS if getattr(s, b)]
                        if not bad:
                            continue
                        why = "; ".join(s.evidence.get(b, b) for b in bad)
                        seen.add(key)
                        out.append(_mk_finding(
                            facts, rel, call["line"], "R015",
                            f"call to `{name}` from an omp-for body, but "
                            f"its effect summary is "
                            f"[{', '.join(bad)}] ({why}); a blocking or "
                            f"unknown-effect callee stalls the whole team "
                            f"at the next barrier — hoist the call out of "
                            f"the hot loop or give the callee a clean, "
                            f"analyzable body"))
                        break
                elif not call.get("dotted") and not call.get("decl_like") \
                        and name in BLOCKING_FUNCS:
                    seen.add(key)
                    out.append(_mk_finding(
                        facts, rel, call["line"], "R015",
                        f"direct call to blocking `{name}` from an omp-for "
                        f"body; I/O from a hot kernel loop serializes the "
                        f"team — buffer per thread and emit from the "
                        f"driver"))
    return out


# ---------------------------------------------------------------------------
# The race-surface report: every shared-write site and its justification.

RACE_SCHEMA = "gcol-sa-race-v1"


def build_race_surface(analyzed, facts) -> dict:
    """Machine-readable enumeration of the program's shared-write
    surface: the seam inventory, every in-region shared-write site with
    its justification, and every parallel-reachable aliasing-parameter
    write. `justification: ""` means R013 flags the site."""
    seams: list = []
    for name, path in SEAM_FILES:
        entry = next((s for s in seams if s["id"] == name), None)
        if entry is None:
            entry = {"id": name, "files": []}
            seams.append(entry)
        entry["files"].append(path)
    sites = []
    for af in analyzed:
        rel = af.rel
        for s in af.payload.get("race_sites", ()):
            ctx = ""
            if 1 <= s["line"] <= len(af.lines):
                ctx = af.lines[s["line"] - 1].strip()
            sites.append({
                "file": rel, "line": s["line"], "function": s["func"],
                "var": s["var"], "classification": s["cls"],
                "kind": "in-region write",
                "justification": s["just"],
                "fingerprint": fingerprint("R013", rel, ctx),
            })
    reached = facts.reachable_from_regions(require_parallel=True)
    for (frel, func), chain in sorted(reached.items(),
                                      key=lambda kv: (kv[0][0],
                                                      kv[0][1].line)):
        for site in func.writes:
            just = ""
            seam = seam_of(frel)
            if seam:
                just = f"seam:{seam}"
            elif site.get("counted"):
                just = "counter-macro"
            elif site["base"] in ("c", "colors"):
                just = "color-accessor-rule"
            elif _index_delegated(func, site):
                just = "index-delegated"
            lines = facts.source_lines.get(frel, [])
            ctx = ""
            if 1 <= site["line"] <= len(lines):
                ctx = lines[site["line"] - 1].strip()
            sites.append({
                "file": frel, "line": site["line"], "function": func.qual,
                "var": site["base"], "classification": "param",
                "kind": "reachable write", "chain": chain,
                "justification": just,
                "fingerprint": fingerprint("R013", frel, ctx),
            })
    sites.sort(key=lambda s: (s["file"], s["line"], s["var"]))
    by_just: dict[str, int] = {}
    for s in sites:
        label = s["justification"] or "UNJUSTIFIED"
        by_just[label] = by_just.get(label, 0) + 1
    return {
        "schema": RACE_SCHEMA,
        "seams": seams,
        "sites": sites,
        "summary": {
            "sites": len(sites),
            "justified": sum(1 for s in sites if s["justification"]),
            "flagged": sum(1 for s in sites if not s["justification"]),
            "by_justification": dict(sorted(by_just.items())),
        },
    }


def verify_race_surface(report: dict, committed_path: str,
                        analysis_md: str) -> list[str]:
    """Cross-check a freshly built report against the committed copy and
    the seam table in docs/ANALYSIS.md. Returns a list of human-readable
    mismatch descriptions (empty = in sync)."""
    import json
    import os
    problems: list[str] = []
    if not os.path.exists(committed_path):
        problems.append(f"{committed_path} does not exist — regenerate it "
                        f"with --race-surface")
        committed = None
    else:
        with open(committed_path, encoding="utf-8") as fh:
            committed = json.load(fh)
    if committed is not None:
        if committed.get("schema") != report["schema"]:
            problems.append(f"schema drift: committed "
                            f"{committed.get('schema')!r} vs "
                            f"{report['schema']!r}")
        def surface(rep):
            return {(s["file"], s["justification"], s["fingerprint"])
                    for s in rep.get("sites", ())}
        missing = surface(committed) - surface(report)
        added = surface(report) - surface(committed)
        for f, j, fp in sorted(missing):
            problems.append(f"committed site no longer produced: "
                            f"{f} [{j or 'UNJUSTIFIED'}] {fp}")
        for f, j, fp in sorted(added):
            problems.append(f"new shared-write site not in the committed "
                            f"surface: {f} [{j or 'UNJUSTIFIED'}] {fp}")
    # The docs seam table: every `| seam-id | path |` row in the
    # benign-race section must match SEAM_FILES exactly.
    doc_seams = set()
    if os.path.exists(analysis_md):
        with open(analysis_md, encoding="utf-8") as fh:
            for line in fh:
                parts = [p.strip().strip("`") for p in line.split("|")]
                if len(parts) >= 3 and parts[1] in {s[0] for s in SEAM_FILES}:
                    doc_seams.add((parts[1], parts[2]))
    else:
        problems.append(f"{analysis_md} does not exist")
    want = set(SEAM_FILES)
    for seam in sorted(want - doc_seams):
        problems.append(f"seam missing from the docs table: {seam[0]} "
                        f"{seam[1]}")
    for seam in sorted(doc_seams - want):
        problems.append(f"docs table lists an unknown seam: {seam[0]} "
                        f"{seam[1]}")
    return problems
