"""Checked-in baseline / suppression file.

Each entry pins one *known and justified* finding:

    R009  src/util/include/greedcolor/util/marker_set.hpp  a1b2c3d4e5f6  # why

The fingerprint hashes (rule | relpath | stripped source line), so an
entry survives unrelated line drift but dies the moment the flagged
line itself changes — exactly when a human should re-judge it. Stale
entries are warnings, not findings: the gate never turns red because
code *improved*.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

BASELINE_NAME = "gcol_sa_baseline.txt"


def fingerprint(rule: str, rel: str, context: str) -> str:
    h = hashlib.sha256()
    h.update(f"{rule}|{rel.replace(os.sep, '/')}|{context.strip()}"
             .encode("utf-8", "replace"))
    return h.hexdigest()[:12]


@dataclass
class Entry:
    rule: str
    rel: str
    fp: str
    justification: str
    lineno: int
    used: bool = False


def load(path: str) -> list[Entry]:
    entries: list[Entry] = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            body, _, just = line.partition("#")
            parts = body.split()
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{lineno}: malformed baseline entry "
                    f"(want: RULE relpath fingerprint  # justification)")
            just = just.strip()
            if not just:
                raise ValueError(
                    f"{path}:{lineno}: baseline entry has no justification "
                    f"comment — every suppression must say why")
            entries.append(Entry(parts[0], parts[1], parts[2], just, lineno))
    return entries


def apply(findings, entries: list[Entry], root: str):
    """Split findings into (kept, suppressed); marks used entries."""
    by_fp = {}
    for e in entries:
        by_fp.setdefault((e.rule, e.rel, e.fp), []).append(e)
    kept, suppressed = [], []
    for f in findings:
        rel = os.path.relpath(f.path, root).replace(os.sep, "/")
        key = (f.rule, rel, fingerprint(f.rule, rel, f.context))
        hits = by_fp.get(key)
        if hits:
            hits[0].used = True
            suppressed.append(f)
        else:
            kept.append(f)
    return kept, suppressed


def render_entries(findings, root: str,
                   justification: str = "TODO: justify or fix") -> str:
    lines = [
        "# gcol-sa baseline: known, individually justified findings.",
        "# Format: RULE  relpath  fingerprint  # justification",
        "# The fingerprint covers the flagged source line; editing that",
        "# line invalidates the entry so the finding resurfaces.",
        "",
    ]
    seen = set()
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        rel = os.path.relpath(f.path, root).replace(os.sep, "/")
        fp = fingerprint(f.rule, rel, f.context)
        if (f.rule, rel, fp) in seen:
            continue
        seen.add((f.rule, rel, fp))
        lines.append(f"{f.rule}  {rel}  {fp}  # {justification}")
    lines.append("")
    return "\n".join(lines)
