"""Checked-in baseline / suppression file.

Each entry pins one *known and justified* finding:

    R009  src/util/include/greedcolor/util/marker_set.hpp  a1b2c3d4e5f6  # why

The fingerprint hashes (rule | relpath | stripped source line), so an
entry survives unrelated line drift but dies the moment the flagged
line itself changes — exactly when a human should re-judge it. Stale
entries are warnings, not findings: the gate never turns red because
code *improved*.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass

BASELINE_NAME = "gcol_sa_baseline.txt"


def fingerprint(rule: str, rel: str, context: str) -> str:
    """v2: each field is length-prefixed before hashing, so no crafted
    context/relpath containing the old '|' delimiter can make one
    rule's entry collide with (and silently suppress) another finding
    at the same site."""
    h = hashlib.sha256(b"gcol-sa-fp2")
    for part in (rule, rel.replace(os.sep, "/"), context.strip()):
        data = part.encode("utf-8", "replace")
        h.update(len(data).to_bytes(4, "big"))
        h.update(data)
    return h.hexdigest()[:12]


def fingerprint_v1(rule: str, rel: str, context: str) -> str:
    """The PR 9 fingerprint — kept only so --rehash-baseline can match
    committed entries during the one-shot migration."""
    h = hashlib.sha256()
    h.update(f"{rule}|{rel.replace(os.sep, '/')}|{context.strip()}"
             .encode("utf-8", "replace"))
    return h.hexdigest()[:12]


def rehash(path: str, findings, root: str) -> tuple[int, list[str]]:
    """One-shot in-place migration of a baseline file to the v2
    fingerprint: each entry's fp field is matched against the current
    findings under BOTH hash versions and rewritten to v2, preserving
    comments, order, and justifications byte-for-byte otherwise.
    Returns (entries_rewritten, unmatched_descriptions)."""
    if not os.path.exists(path):
        return 0, [f"no baseline file at {path}"]
    fps: dict[tuple, str] = {}
    for f in findings:
        rel = os.path.relpath(f.path, root).replace(os.sep, "/")
        new = fingerprint(f.rule, rel, f.context)
        fps[(f.rule, rel, fingerprint_v1(f.rule, rel, f.context))] = new
        fps[(f.rule, rel, new)] = new   # already-migrated entries pass
    out_lines: list[str] = []
    rewritten, unmatched = 0, []
    with open(path, encoding="utf-8") as fh:
        for raw in fh:
            line = raw.rstrip("\n")
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                out_lines.append(line)
                continue
            body, sep, just = line.partition("#")
            parts = body.split()
            if len(parts) != 3:
                out_lines.append(line)
                continue
            rule, rel, fp = parts
            new = fps.get((rule, rel, fp))
            if new is None:
                unmatched.append(f"{rule} {rel} {fp} (no current finding "
                                 f"matches either hash version)")
                out_lines.append(line)
                continue
            if new != fp:
                rewritten += 1
            out_lines.append(f"{rule}  {rel}  {new}  {sep}{just}")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(out_lines) + "\n")
    return rewritten, unmatched


@dataclass
class Entry:
    rule: str
    rel: str
    fp: str
    justification: str
    lineno: int
    used: bool = False


def load(path: str) -> list[Entry]:
    entries: list[Entry] = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            body, _, just = line.partition("#")
            parts = body.split()
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{lineno}: malformed baseline entry "
                    f"(want: RULE relpath fingerprint  # justification)")
            just = just.strip()
            if not just:
                raise ValueError(
                    f"{path}:{lineno}: baseline entry has no justification "
                    f"comment — every suppression must say why")
            entries.append(Entry(parts[0], parts[1], parts[2], just, lineno))
    return entries


def apply(findings, entries: list[Entry], root: str):
    """Split findings into (kept, suppressed); marks used entries."""
    by_fp = {}
    for e in entries:
        by_fp.setdefault((e.rule, e.rel, e.fp), []).append(e)
    kept, suppressed = [], []
    for f in findings:
        rel = os.path.relpath(f.path, root).replace(os.sep, "/")
        key = (f.rule, rel, fingerprint(f.rule, rel, f.context))
        hits = by_fp.get(key)
        if hits:
            hits[0].used = True
            suppressed.append(f)
        else:
            kept.append(f)
    return kept, suppressed


def render_entries(findings, root: str,
                   justification: str = "TODO: justify or fix") -> str:
    lines = [
        "# gcol-sa baseline: known, individually justified findings.",
        "# Format: RULE  relpath  fingerprint  # justification",
        "# The fingerprint covers the flagged source line; editing that",
        "# line invalidates the entry so the finding resurfaces.",
        "",
    ]
    seen = set()
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        rel = os.path.relpath(f.path, root).replace(os.sep, "/")
        fp = fingerprint(f.rule, rel, f.context)
        if (f.rule, rel, fp) in seen:
            continue
        seen.add((f.rule, rel, fp))
        lines.append(f"{f.rule}  {rel}  {fp}  # {justification}")
    lines.append("")
    return "\n".join(lines)
