#!/usr/bin/env python3
"""gcol_lint: the greedcolor repo-specific lint gate.

Enforces project rules that generic tooling cannot express, as errors:

  R001 omp-critical       `#pragma omp critical` is banned everywhere
                          except util/counters.hpp. Counter merges go
                          through CounterSlots (publish/merge_into);
                          a critical section in a kernel serializes the
                          very phase the paper parallelizes.
  R002 raw-color-access   Inside an OpenMP parallel region, the shared
                          color array may only be touched through the
                          relaxed atomic_ref accessors (load_color /
                          store_color / exchange_uncolor). A raw `c[...]`
                          or `colors[...]` read or write is an
                          unsynchronized access the speculative-race
                          model does not sanction.
  R003 kernel-alloc       No allocation, reallocation, or bounds-checked
                          `.at()` inside a hot kernel loop (the body of
                          an `omp for`). Workspaces are pre-sized by the
                          drivers; an allocation here serializes threads
                          on the heap lock and `.at()` adds a branch per
                          adjacency entry.
  R004 schedule-missing   Every `omp for` / `omp parallel for` in the
                          core kernels must carry an explicit
                          `schedule(...)` clause: the chunk size is part
                          of the algorithm (the paper's "-64" variants),
                          not an implementation default to inherit.
  R005 raw-atomic-ref     `std::atomic_ref` on the color array is the
                          accessor seam's private implementation detail:
                          outside src/core/src/kernels_common.hpp it is
                          banned in the kernel layer. Every tool that
                          instruments the seam (the audit ledgers, the
                          gcol-mc schedule points) hooks load_color /
                          store_color / exchange_uncolor; a raw
                          atomic_ref bypasses all of them silently.
  R006 transport-outside-dist
                          The boundary-exchange Transport layer
                          (greedcolor/dist/transport.hpp and the
                          Transport / MailboxTransport /
                          LoopbackTransport / LossyTransport types) is
                          private to src/dist. Everything else talks to
                          the sharded runtime through DistOptions
                          (TransportKind is the public switch); a direct
                          Transport use elsewhere bypasses the fault
                          plumbing, retry accounting, and versioned
                          delivery the runtime guarantees.
  R007 marker-set-direct  The BGPC/D2GC kernel drivers may not
                          instantiate MarkerSet / BitMarkerSet /
                          TwoLevelBitMarkerSet by value: the forbidden
                          structure is chosen per phase by the
                          ForbiddenSet policy seam in kernels_common.hpp
                          (and, under --forbidden-set=adaptive, per
                          round by the AdaptiveFsEngine). A direct
                          instantiation pins one representation and
                          bypasses the ThreadWorkspace scratch reuse;
                          binding a reference (`MarkerSet&`) to policy-
                          provided scratch is the sanctioned form.
  R008 raw-timing         No raw `std::chrono` or `omp_get_wtime` timing
                          in the engine layers (src/core, src/dist).
                          Wall-clock measurement goes through the
                          WallTimer utility (result timings) or the
                          gcol-trace spans (src/obs): an ad-hoc clock
                          is invisible to the trace timeline and the
                          RunReport, and scatters timing policy the
                          observability subsystem owns.

R001 applies to every file; R002-R005 apply to files under src/core (the
kernel layer), R006 to files under src/ outside src/dist, R007 to the
src/core kernel drivers (basename contains "bgpc" or "d2gc"), R008 to
files under src/core and src/dist, and all
of them to any file passed explicitly on the command line (which is how
the negative-test fixtures are exercised).
kernels_common.hpp itself is exempt from R005 and R007 — it is the
accessor and policy seam.

The file set comes from a CMake compilation database
(--compile-commands) plus the headers under src/, so the gate sees
exactly what the build sees. Exit codes: 0 clean, 1 violations,
2 usage / unreadable input / internal error.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
from dataclasses import dataclass, field

REPO_MARKERS = ("CMakeLists.txt", "CMakePresets.json")

RULES = {
    "R001": "omp-critical",
    "R002": "raw-color-access",
    "R003": "kernel-alloc",
    "R004": "schedule-missing",
    "R005": "raw-atomic-ref",
    "R006": "transport-outside-dist",
    "R007": "marker-set-direct",
    "R008": "raw-timing",
}

# R008: raw clocks in the engine layers. Word-bounded so "synchronous"
# (and other chrono-substring identifiers) never match.
RAW_TIMING_RE = re.compile(r"\bstd\s*::\s*chrono\b|\bomp_get_wtime\b")

# The one file allowed to spell std::atomic_ref: the accessor seam.
ATOMIC_REF_SEAM = "core/src/kernels_common.hpp"
ATOMIC_REF_RE = re.compile(r"\batomic_ref\b")

# R007: a marker-set type name NOT immediately followed by `&` is a
# by-value use (declaration, member, or temporary); reference bindings
# to policy-provided ThreadWorkspace scratch are the sanctioned form.
MARKER_SET_RE = re.compile(r"\b(?:TwoLevelBit|Bit)?MarkerSet\b(?!\s*&)")

# Matches the Transport interface and its implementations but not the
# public TransportKind switch (no word boundary inside "TransportKind").
TRANSPORT_RE = re.compile(r"\b(?:Mailbox|Loopback|Lossy)?Transport\b")
# Checked against the raw text: the stripper blanks quoted include paths.
TRANSPORT_INCLUDE_RE = re.compile(
    r'^\s*#\s*include\s*["<][^">]*greedcolor/dist/transport\.hpp[">]')

RAW_COLOR_RE = re.compile(r"\b(?:c|colors)\s*\[")
ALLOC_RES = [
    re.compile(r"\.at\s*\("),
    re.compile(r"\bnew\b"),
    re.compile(r"\bmalloc\s*\("),
    re.compile(r"\.resize\s*\("),
    re.compile(r"\.reserve\s*\("),
    re.compile(r"\bstd::(?:vector|string|map|unordered_map|set|unordered_set)\s*<"),
]


@dataclass
class Violation:
    path: str
    line: int
    rule: str
    message: str

    def render(self, root: str) -> str:
        rel = os.path.relpath(self.path, root)
        return (f"{rel}:{self.line}: error: "
                f"[{self.rule}/{RULES[self.rule]}] {self.message}")


@dataclass
class Scope:
    kind: str  # "brace" | "stmt"
    parallel: bool
    hot: bool


@dataclass
class Pending:
    parallel: bool = False
    hot: bool = False

    def any(self) -> bool:
        return self.parallel or self.hot


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines
    and every other character position (so line numbers and braces in
    code survive, while braces in comments/strings disappear)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "str"
                out.append('"')
                i += 1
                continue
            if ch == "'":
                state = "chr"
                out.append("'")
                i += 1
                continue
            out.append(ch)
        elif state == "line":
            if ch == "\n":
                state = "code"
                out.append("\n")
            elif ch == "\\" and nxt == "\n":
                out.append(" \n")
                i += 2
                continue
            else:
                out.append(" ")
        elif state == "block":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == quote:
                state = "code"
                out.append(quote)
            elif ch == "\n":  # unterminated; bail back to code
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def logical_lines(stripped: str):
    """Yield (start_line, text) with backslash continuations joined
    (pragmas may span physical lines)."""
    physical = stripped.split("\n")
    i = 0
    while i < len(physical):
        start = i + 1
        buf = physical[i]
        while buf.rstrip().endswith("\\") and i + 1 < len(physical):
            buf = buf.rstrip()[:-1] + " " + physical[i + 1]
            i += 1
        yield start, buf
        i += 1


def omp_pragma_tokens(line: str):
    m = re.match(r"\s*#\s*pragma\s+omp\b(.*)", line)
    if not m:
        return None
    return re.findall(r"[A-Za-z_]\w*", m.group(1))


class FileLinter:
    """Lexical scanner tracking OpenMP parallel regions and omp-for loop
    bodies through brace/paren structure (single-statement, braceless
    loop bodies included)."""

    def __init__(self, path: str, text: str, core_rules: bool,
                 dist_guard: bool = False, marker_guard: bool = False,
                 timing_guard: bool = False):
        self.path = path
        self.core_rules = core_rules
        self.dist_guard = dist_guard
        self.marker_guard = marker_guard
        self.timing_guard = timing_guard
        self.raw = text
        self.stripped = strip_comments_and_strings(text)
        self.violations: list[Violation] = []

    def add(self, line: int, rule: str, message: str) -> None:
        self.violations.append(Violation(self.path, line, rule, message))

    def lint(self) -> list[Violation]:
        self._check_pragmas()
        if self.core_rules:
            self._scan_scopes()
            self._check_atomic_ref()
        if self.dist_guard:
            self._check_transport()
        if self.marker_guard:
            self._check_marker_sets()
        if self.timing_guard:
            self._check_raw_timing()
        return self.violations

    # ---- R008: engine timing goes through WallTimer / gcol-trace ----

    def _check_raw_timing(self) -> None:
        for lineno, line in enumerate(self.stripped.split("\n"), start=1):
            if RAW_TIMING_RE.search(line):
                self.add(lineno, "R008",
                         "raw std::chrono / omp_get_wtime in an engine "
                         "layer; time through WallTimer (result totals) or "
                         "gcol-trace spans (src/obs) so the measurement "
                         "reaches the trace timeline and the run report")

    # ---- R007: marker sets come from the policy seam, by reference ----

    def _check_marker_sets(self) -> None:
        if self.path.replace(os.sep, "/").endswith(ATOMIC_REF_SEAM):
            return  # kernels_common.hpp IS the policy seam
        for lineno, line in enumerate(self.stripped.split("\n"), start=1):
            if MARKER_SET_RE.search(line):
                self.add(lineno, "R007",
                         "MarkerSet family instantiated directly in a "
                         "kernel driver; bind a reference to the "
                         "ThreadWorkspace scratch through the ForbiddenSet "
                         "policy seam (kernels_common.hpp) so the per-phase "
                         "representation choice stays with the engine")

    # ---- R006: the Transport layer stays private to src/dist ----

    def _check_transport(self) -> None:
        for lineno, line in enumerate(self.raw.split("\n"), start=1):
            if TRANSPORT_INCLUDE_RE.search(line):
                self.add(lineno, "R006",
                         "greedcolor/dist/transport.hpp is private to "
                         "src/dist; drive the runtime through DistOptions "
                         "(TransportKind) instead")
        for lineno, line in enumerate(self.stripped.split("\n"), start=1):
            if TRANSPORT_RE.search(line):
                self.add(lineno, "R006",
                         "Transport type used outside src/dist; the "
                         "boundary-exchange layer is private — select a "
                         "transport with DistOptions::transport "
                         "(TransportKind)")

    # ---- R005: atomic_ref confined to the accessor seam ----

    def _check_atomic_ref(self) -> None:
        if self.path.replace(os.sep, "/").endswith(ATOMIC_REF_SEAM):
            return
        for lineno, line in enumerate(self.stripped.split("\n"), start=1):
            if ATOMIC_REF_RE.search(line):
                self.add(lineno, "R005",
                         "raw std::atomic_ref outside the kernels_common.hpp "
                         "accessor seam; go through load_color/store_color/"
                         "exchange_uncolor so audit and gcol-mc hooks see "
                         "the access")

    # ---- pragma-level rules (R001, R004) ----

    def _check_pragmas(self) -> None:
        allow_critical = self.path.replace(os.sep, "/").endswith(
            "util/include/greedcolor/util/counters.hpp")
        for lineno, line in logical_lines(self.stripped):
            tokens = omp_pragma_tokens(line)
            if tokens is None:
                continue
            if "critical" in tokens and not allow_critical:
                self.add(lineno, "R001",
                         "`#pragma omp critical` outside util/counters.hpp; "
                         "use CounterSlots / per-thread state instead")
            if self.core_rules and "for" in tokens and "schedule" not in tokens:
                self.add(lineno, "R004",
                         "omp for without an explicit schedule(...) clause")

    # ---- scope-aware rules (R002, R003) ----

    def _scan_scopes(self) -> None:
        scopes: list[Scope] = []
        pending = Pending()
        paren_depth = 0
        # after an omp-for/parallel pragma: "idle" -> (for seen) "header"
        # -> (parens closed) "body" -> `{` or statement
        for_state = "idle"
        line_flags: dict[int, tuple[bool, bool]] = {}

        def effective() -> tuple[bool, bool]:
            par = any(s.parallel for s in scopes)
            hot = any(s.hot for s in scopes)
            return par, hot

        def note_line(lineno: int) -> None:
            par, hot = effective()
            old = line_flags.get(lineno, (False, False))
            line_flags[lineno] = (old[0] or par, old[1] or hot)

        physical = self.stripped.split("\n")
        for idx, raw_line in enumerate(physical):
            lineno = idx + 1
            tokens = omp_pragma_tokens(raw_line)
            if tokens is not None:
                if "parallel" in tokens:
                    pending.parallel = True
                if "for" in tokens:
                    pending.hot = True
                    for_state = "idle"
                note_line(lineno)
                continue
            j = 0
            while j < len(raw_line):
                ch = raw_line[j]
                if pending.any() and for_state == "idle":
                    m = re.match(r"\bfor\b", raw_line[j:])
                    if m and re.match(r"(^|\W)$", raw_line[max(0, j - 1):j]):
                        for_state = "header"
                if ch == "(":
                    paren_depth += 1
                elif ch == ")":
                    paren_depth = max(0, paren_depth - 1)
                    if for_state == "header" and paren_depth == 0:
                        for_state = "body"
                        j += 1
                        continue
                elif ch == "{":
                    if pending.any():
                        scopes.append(Scope("brace", pending.parallel,
                                            pending.hot))
                        pending = Pending()
                        for_state = "idle"
                    else:
                        par, hot = effective()
                        scopes.append(Scope("brace", par, hot))
                elif ch == "}":
                    while scopes and scopes[-1].kind == "stmt":
                        scopes.pop()
                    if scopes:
                        scopes.pop()
                elif ch == ";" and paren_depth == 0:
                    if scopes and scopes[-1].kind == "stmt":
                        scopes.pop()
                elif for_state == "body" and not ch.isspace():
                    # Braceless loop body: one statement, popped at `;`.
                    scopes.append(Scope("stmt", pending.parallel, pending.hot))
                    pending = Pending()
                    for_state = "idle"
                note_line(lineno)
                j += 1
            note_line(lineno)

        for idx, raw_line in enumerate(physical):
            lineno = idx + 1
            par, hot = line_flags.get(lineno, (False, False))
            if par and "atomic_ref" not in raw_line:
                if RAW_COLOR_RE.search(raw_line):
                    self.add(lineno, "R002",
                             "raw color-array access inside a parallel "
                             "region; use load_color/store_color "
                             "(relaxed atomic_ref)")
            if hot:
                for rx in ALLOC_RES:
                    if rx.search(raw_line):
                        self.add(lineno, "R003",
                                 "allocation / bounds-checked access inside "
                                 "a hot kernel loop; pre-size workspaces in "
                                 "the driver")
                        break


def find_root(start: str) -> str:
    d = os.path.abspath(start)
    while True:
        if all(os.path.exists(os.path.join(d, m)) for m in REPO_MARKERS):
            return d
        parent = os.path.dirname(d)
        if parent == d:
            return os.path.abspath(start)
        d = parent


def collect_files(root: str, compile_commands: str | None) -> list[str]:
    files: set[str] = set()
    if compile_commands:
        try:
            with open(compile_commands, encoding="utf-8") as fh:
                for entry in json.load(fh):
                    path = entry.get("file", "")
                    if not os.path.isabs(path):
                        path = os.path.join(entry.get("directory", ""), path)
                    path = os.path.realpath(path)
                    if path.startswith(os.path.realpath(root) + os.sep):
                        files.add(path)
        except (OSError, ValueError) as exc:
            print(f"gcol_lint: cannot read {compile_commands}: {exc}",
                  file=sys.stderr)
            sys.exit(2)
    else:
        for pat in ("src/**/*.cpp", "bench/**/*.cpp", "examples/**/*.cpp",
                    "tests/**/*.cpp"):
            files.update(
                os.path.realpath(p)
                for p in glob.glob(os.path.join(root, pat), recursive=True))
    files.update(
        os.path.realpath(p)
        for p in glob.glob(os.path.join(root, "src/**/*.hpp"), recursive=True))
    # Generated / third-party trees never participate.
    files = {f for f in files
             if f"{os.sep}build" not in f and f"{os.sep}_deps{os.sep}" not in f}
    return sorted(files)


def is_core(root: str, path: str) -> bool:
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    return rel.startswith("src/core/")


def is_dist_guarded(root: str, path: str) -> bool:
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    return rel.startswith("src/") and not rel.startswith("src/dist/")


def is_marker_guarded(root: str, path: str) -> bool:
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    base = os.path.basename(rel)
    return (rel.startswith("src/core/") and
            ("bgpc" in base or "d2gc" in base))


def is_timing_guarded(root: str, path: str) -> bool:
    rel = os.path.relpath(path, root).replace(os.sep, "/")
    return rel.startswith("src/core/") or rel.startswith("src/dist/")


def lint_paths(root: str, paths: list[str],
               explicit: bool) -> list[Violation]:
    violations: list[Violation] = []
    for path in paths:
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError as exc:
            print(f"gcol_lint: cannot read {path}: {exc}", file=sys.stderr)
            sys.exit(2)
        core = explicit or is_core(root, path)
        dist_guard = explicit or is_dist_guarded(root, path)
        marker_guard = explicit or is_marker_guarded(root, path)
        timing_guard = explicit or is_timing_guarded(root, path)
        violations.extend(
            FileLinter(path, text, core, dist_guard, marker_guard,
                       timing_guard).lint())
    return violations


def self_test(root: str) -> int:
    fixtures = sorted(
        glob.glob(os.path.join(root, "tools", "lint_fixtures", "*.cpp")))
    if not fixtures:
        print("gcol_lint --self-test: no fixtures found", file=sys.stderr)
        return 2
    failures = 0
    for path in fixtures:
        name = os.path.basename(path)
        got = lint_paths(root, [path], explicit=True)
        m = re.match(r"(r\d{3})_", name)
        if m:
            expected = m.group(1).upper()
            ok = (len(got) == 1 and got[0].rule == expected)
            detail = (f"expected exactly one {expected} violation, got "
                      f"[{', '.join(v.rule for v in got) or 'none'}]")
        else:  # clean_*.cpp fixtures must pass
            expected = "clean"
            ok = not got
            detail = (f"expected no violations, got "
                      f"[{', '.join(v.rule for v in got)}]")
        status = "ok" if ok else "FAIL"
        print(f"  {name:<34} {expected:<6} {status}")
        if not ok:
            failures += 1
            print(f"    {detail}")
            for v in got:
                print(f"    {v.render(root)}")
    ec_failures = exit_code_self_test(root)
    total = len(fixtures)
    print(f"gcol_lint --self-test: {total - failures}/{total} fixtures ok, "
          f"{3 - ec_failures}/3 exit-code checks ok")
    return 0 if failures + ec_failures == 0 else 1


def exit_code_self_test(root: str) -> int:
    """Verify the process-level exit-code contract by re-invoking the
    script as CI would: findings exit 1, unreadable/unparsable inputs
    and internal errors exit 2 (distinct, so a pipeline can tell "the
    code is dirty" from "the gate itself broke")."""
    import subprocess
    import tempfile
    script = os.path.abspath(__file__)
    checks = []
    dirty = os.path.join(root, "tools", "lint_fixtures",
                         "r001_omp_critical.cpp")
    checks.append(("findings exit 1",
                   [sys.executable, script, dirty], 1))
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fh:
        fh.write("{ this is not json")
        bad_json = fh.name
    try:
        checks.append(("unparsable compile_commands exit 2",
                       [sys.executable, script,
                        "--compile-commands", bad_json], 2))
        checks.append(("missing file exit 2",
                       [sys.executable, script,
                        os.path.join(root, "no", "such", "file.cpp")], 2))
        failures = 0
        for name, cmd, want in checks:
            rc = subprocess.run(cmd, capture_output=True,
                                check=False).returncode
            ok = rc == want
            print(f"  {name:<34} exit-{want} {'ok' if ok else 'FAIL'}")
            if not ok:
                failures += 1
                print(f"    expected exit {want}, got {rc}")
        return failures
    finally:
        os.unlink(bad_json)


def main() -> int:
    parser = argparse.ArgumentParser(prog="gcol_lint.py",
                                     description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="lint only these files (all rules apply)")
    parser.add_argument("--compile-commands", metavar="JSON",
                        help="compilation database to take the file set from")
    parser.add_argument("--root", default=None,
                        help="repository root (auto-detected by default)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--self-test", action="store_true",
                        help="run the lint_fixtures negative tests")
    args = parser.parse_args()

    root = os.path.abspath(args.root) if args.root else find_root(
        os.path.dirname(os.path.abspath(__file__)))

    if args.list_rules:
        for rule, name in sorted(RULES.items()):
            print(f"{rule}  {name}")
        return 0
    if args.self_test:
        return self_test(root)

    if args.paths:
        paths = [os.path.realpath(p) for p in args.paths]
        violations = lint_paths(root, paths, explicit=True)
        checked = len(paths)
    else:
        paths = collect_files(root, args.compile_commands)
        if not paths:
            print("gcol_lint: no files to lint (missing compile_commands?)",
                  file=sys.stderr)
            return 2
        violations = lint_paths(root, paths, explicit=False)
        checked = len(paths)

    for v in sorted(violations, key=lambda v: (v.path, v.line)):
        print(v.render(root))
    if violations:
        print(f"gcol_lint: {len(violations)} violation(s) in "
              f"{checked} file(s)", file=sys.stderr)
        return 1
    print(f"gcol_lint: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    # Exit-code contract: 0 clean, 1 violations, 2 for anything that
    # means the gate itself could not do its job (usage errors already
    # exit 2 via argparse; an unexpected crash must not exit 1 and be
    # mistaken for "findings").
    try:
        sys.exit(main())
    except KeyboardInterrupt:
        sys.exit(130)
    except Exception as exc:  # noqa: BLE001 — the process boundary
        print(f"gcol_lint: internal error: {exc}", file=sys.stderr)
        sys.exit(2)
