#!/usr/bin/env python3
"""Compatibility shim: gcol_lint is now gcol-sa (tools/gcol_sa/).

The regex-based scanner this file used to contain has been superseded
by the token-accurate, interprocedural gcol-sa engine. This shim keeps
every existing entry point working unchanged:

    python3 tools/gcol_lint.py [paths...]
    python3 tools/gcol_lint.py --compile-commands build/compile_commands.json
    python3 tools/gcol_lint.py --self-test
    python3 tools/gcol_lint.py --list-rules

Flags are forwarded verbatim (gcol-sa accepts a superset) and the exit
code contract is identical: 0 clean, 1 findings, 2 broken gate. New
code should invoke `python3 tools/gcol_sa` directly.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from gcol_sa.cli import entry  # noqa: E402

if __name__ == "__main__":
    entry()
