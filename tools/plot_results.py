#!/usr/bin/env python3
"""Plot the CSV series the figure harnesses emit.

Usage:
  python3 tools/plot_results.py fig2_bgpc_sweep.csv         # time bars
  python3 tools/plot_results.py fig3_balance_distribution.csv
  python3 tools/plot_results.py fig1_iteration_breakdown.csv

Requires matplotlib; writes <input>.png next to the CSV. The harnesses
print the same data as text tables, so this is optional sugar.
"""
import csv
import sys
from collections import defaultdict


def load(path):
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    return rows


def plot_fig2(rows, out):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    datasets = sorted({r["dataset"] for r in rows})
    fig, axes = plt.subplots(
        (len(datasets) + 3) // 4, 4, figsize=(18, 4 * ((len(datasets) + 3) // 4))
    )
    axes = axes.flatten() if hasattr(axes, "flatten") else [axes]
    for ax, ds in zip(axes, datasets):
        series = defaultdict(dict)
        for r in rows:
            if r["dataset"] != ds:
                continue
            series[r["algorithm"]][int(r["threads"])] = float(r["seconds"]) * 1e3
        for algo, pts in series.items():
            xs = sorted(pts)
            ax.plot(xs, [pts[x] for x in xs], marker="o", label=algo)
        ax.set_title(ds)
        ax.set_xlabel("threads")
        ax.set_ylabel("ms")
        ax.set_xscale("log", base=2)
    axes[0].legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out, dpi=130)


def plot_fig3(rows, out):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(9, 5))
    series = defaultdict(list)
    for r in rows:
        series[(r["algorithm"], r["balance"])].append(
            (int(r["rank"]), int(r["cardinality"]))
        )
    for (algo, bal), pts in series.items():
        pts.sort()
        ax.plot([p[0] for p in pts], [p[1] for p in pts], label=f"{algo}-{bal}")
    ax.set_yscale("log")
    ax.set_xlabel("color set (sorted by cardinality)")
    ax.set_ylabel("#vertices in the color set (log)")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out, dpi=130)


def plot_fig1(rows, out):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    algos = []
    bars = defaultdict(list)
    for r in rows:
        key = (r["algorithm"], int(r["round"]))
        if key not in algos:
            algos.append(key)
        bars[r["phase"]].append((key, float(r["msec"])))
    fig, ax = plt.subplots(figsize=(12, 5))
    xs = range(len(algos))
    for phase, color in (("color", "#4477aa"), ("conflict", "#ee6677")):
        vals = dict(bars[phase])
        ax.bar(
            xs,
            [vals.get(k, 0.0) for k in algos],
            bottom=None if phase == "color" else [dict(bars["color"]).get(k, 0.0) for k in algos],
            label=phase,
            color=color,
        )
    ax.set_xticks(list(xs))
    ax.set_xticklabels([f"{a}\nr{r}" for a, r in algos], fontsize=6)
    ax.set_yscale("log")
    ax.set_ylabel("ms (log)")
    ax.legend()
    fig.tight_layout()
    fig.savefig(out, dpi=130)


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 1
    path = sys.argv[1]
    rows = load(path)
    out = path.rsplit(".", 1)[0] + ".png"
    if "balance" in rows[0]:
        plot_fig3(rows, out)
    elif "phase" in rows[0]:
        plot_fig1(rows, out)
    else:
        plot_fig2(rows, out)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
